#include "sched/cluster.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "attest/svc/verify_service.h"
#include "fault/linkfault.h"
#include "fault/retry.h"
#include "metrics/json.h"
#include "sim/clock.h"
#include "sim/parallel.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::sched {

std::string_view to_string(DegradeResponse r) {
  switch (r) {
    case DegradeResponse::kNone:
      return "none";
    case DegradeResponse::kReboot:
      return "reboot";
    case DegradeResponse::kMigrate:
      return "migrate";
  }
  return "?";
}

double ServiceModel::replica_capacity_rps(int concurrency) const {
  const double total_s = total_ns() / sim::kSec;
  if (total_s <= 0) return 0;
  // Workers overlap the parallel portion; the serialized (bounce-buffer)
  // portion funnels through the per-VM slot pool and caps the VM's rate.
  const double parallel_rate = static_cast<double>(concurrency) / total_s;
  if (serialized_ns <= 0) return parallel_rate;
  const double bounce_rate =
      std::max(1, bounce_slots) * sim::kSec / serialized_ns;
  return std::min(parallel_rate, bounce_rate);
}

ServiceModel ServiceModel::calibrate(core::ConfBench& system,
                                     const std::string& function,
                                     const std::string& language,
                                     const std::string& platform, bool secure,
                                     int probes) {
  tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat) throw std::invalid_argument("unknown platform: " + platform);
  const sim::PlatformCosts& costs = plat->costs(secure);

  double total = 0, io_share = 0;
  int n = 0;
  for (int t = 0; t < probes; ++t) {
    const core::InvocationRecord rec = system.gateway().invoke(
        {.function = function,
         .language = language,
         .platform = platform,
         .secure = secure,
         .trial = static_cast<std::uint64_t>(t)});
    if (!rec.ok())
      throw std::runtime_error("calibration invoke failed: " + rec.error);
    total += rec.function_ns;
    const metrics::PerfCounters& pc = rec.perf;
    const double parts = pc.t_compute_ns + pc.t_memory_ns + pc.t_os_ns +
                         pc.t_io_ns + pc.t_other_ns;
    if (parts > 0) io_share += pc.t_io_ns / parts;
    ++n;
  }

  ServiceModel m;
  const double mean_total = n ? total / n : 1 * sim::kMs;
  io_share = n ? io_share / n : 0;
  // Only platforms that actually route DMA through bounce buffers (TDX
  // swiotlb, CCA realm shared pages) serialize their I/O portion; SNP's
  // shared-page path and every normal VM keep I/O on the parallel side.
  const bool bounced = secure && costs.io.bounce_fixed_ns > 0;
  m.serialized_ns = bounced ? mean_total * io_share : 0;
  m.parallel_ns = mean_total - m.serialized_ns;
  m.jitter_sigma = costs.trial_jitter_sigma;

  // TEE-specific cold start: boot a throwaway VM of the same kind the
  // autoscaler would add (firmware/kernel plus, on confidential VMs, the
  // eager private-memory acceptance charged by GuestVm::boot).
  vm::VmConfig vc{platform + "/coldstart", plat, secure, vm::UnitKind::kVm,
                  8, 16ULL << 30};
  m.cold_start_ns = vm::GuestVm(vc).boot();
  return m;
}

double ClusterResult::throughput_rps() const {
  return makespan_ns > 0
             ? static_cast<double>(completed) / (makespan_ns / sim::kSec)
             : 0.0;
}

sim::Ns ClusterResult::mean_ttr_ns() const {
  if (recoveries.empty()) return 0;
  sim::Ns sum = 0;
  for (const RecoverySample& r : recoveries) sum += r.ttr_ns();
  return sum / static_cast<double>(recoveries.size());
}

sim::Ns ClusterResult::mean_migration_ttr_ns() const {
  if (migrations.empty()) return 0;
  sim::Ns sum = 0;
  for (const MigrationSample& m : migrations) sum += m.ttr_ns();
  return sum / static_cast<double>(migrations.size());
}

std::string ClusterResult::to_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("function").value(cfg.function);
  w.key("language").value(cfg.language);
  w.key("platform").value(cfg.platform);
  w.key("secure").value(cfg.secure);
  w.key("arrival").value(std::string(to_string(cfg.arrival)));
  w.key("rate_rps").value(cfg.rate_rps);
  w.key("seed").value(cfg.seed);
  w.key("model");
  w.begin_object();
  w.key("parallel_ns").value(model.parallel_ns);
  w.key("serialized_ns").value(model.serialized_ns);
  w.key("bounce_slots").value(model.bounce_slots);
  w.key("jitter_sigma").value(model.jitter_sigma);
  w.key("cold_start_ns").value(model.cold_start_ns);
  w.end_object();
  w.key("offered").value(offered);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("failed").value(failed);
  w.key("retries").value(retries);
  w.key("failovers").value(failovers);
  w.key("crashes").value(crashes);
  w.key("availability").value(availability());
  w.key("mean_ttr_ns").value(mean_ttr_ns());
  w.key("latency_fault_p99_ns").value(latency_fault.p99());
  w.key("makespan_ns").value(makespan_ns);
  w.key("throughput_rps").value(throughput_rps());
  w.key("peak_warm").value(peak_warm);
  w.key("latency_ns");
  w.begin_object();
  w.key("p50").value(latency.p50());
  w.key("p95").value(latency.p95());
  w.key("p99").value(latency.p99());
  w.key("p999").value(latency.p999());
  w.key("mean").value(latency.mean());
  w.key("max").value(latency.max());
  w.end_object();
  w.key("queue_wait_p99_ns").value(queue_wait.p99());
  w.key("hedges").value(hedges);
  w.key("hedge_wins").value(hedge_wins);
  w.key("hedge_waste").value(hedge_waste);
  w.key("hedge_cancelled").value(hedge_cancelled);
  w.key("hedge_threshold_ns").value(hedge_threshold_ns);
  w.key("gray_trips").value(gray_trips);
  w.key("responses_lost").value(responses_lost);
  w.key("migrations").value(static_cast<std::uint64_t>(migrations.size()));
  w.key("mean_migration_ttr_ns").value(mean_migration_ttr_ns());
  w.end_object();
  return w.str();
}

double ClusterExperiment::fleet_capacity_rps(const ServiceModel& model) const {
  return model.replica_capacity_rps(cfg_.queue.concurrency) *
         cfg_.scaler.max_replicas;
}

ClusterExperiment::Trial ClusterExperiment::prepare(
    core::ConfBench& system) const {
  Trial t;
  t.model =
      ServiceModel::calibrate(system, cfg_.function, cfg_.language,
                              cfg_.platform, cfg_.secure,
                              cfg_.calibration_probes);
  t.cfg = cfg_;
  if (!cfg_.faults.empty() && cfg_.recovery.total_ns() <= 0) {
    // Measure replica replacement through the real boot + re-attestation
    // path, so secure fleets recover mechanically slower for the same
    // reasons their VMs boot and attest slower.
    t.cfg.recovery = fault::measure_recovery(cfg_.platform, cfg_.secure);
  }
  if (!cfg_.faults.empty() &&
      cfg_.degrade_response == DegradeResponse::kMigrate &&
      cfg_.migration.total_ns() <= 0) {
    t.cfg.migration = fault::measure_migration(cfg_.platform, cfg_.secure);
  }
  return t;
}

ClusterResult ClusterExperiment::run(core::ConfBench& system) const {
  const Trial t = prepare(system);
  return ClusterExperiment(t.cfg).run_with_model(t.model);
}

std::vector<ClusterResult> ClusterExperiment::run_trials(
    const std::vector<Trial>& trials, int threads) {
  if (threads <= 0) threads = sim::default_threads();
  // A tracer or an attestation service is shared mutable state across
  // trials; concurrent trials would interleave writes into it and the
  // merged result would stop being schedule-independent. Those sweeps run
  // sequentially — same results, just no fan-out.
  for (const Trial& t : trials)
    if ((t.cfg.tracer != nullptr && t.cfg.tracer->enabled()) ||
        t.cfg.attest_svc != nullptr)
      threads = 1;
  std::vector<ClusterResult> out(trials.size());
  sim::parallel_for_ordered(trials.size(), threads, [&](std::size_t i) {
    out[i] = ClusterExperiment(trials[i].cfg).run_with_model(trials[i].model);
  });
  return out;
}

namespace {

struct Replica {
  enum class State : std::uint8_t {
    kParked,
    kBooting,
    kWarm,
    kDown,       ///< crashed; breaker must open before replacement starts
    kRecovering  ///< replacement booting (+ re-attesting when secure)
  };
  ReplicaQueue queue;
  State state = State::kParked;
  /// Virtual time at which each swiotlb slot of this VM becomes free; a
  /// request's serialized portion takes the earliest-free slot.
  std::vector<sim::Ns> bounce_free;
  /// Copy tokens (request id * 2 + copy index) in service here, paired
  /// with the completion event's handle; a crash kills all of them by
  /// cancelling those events directly.
  std::vector<std::pair<std::uint64_t, EventId>> active;
  double slow_factor = 1.0;  ///< >1 during a brownout window
  bool reachable = true;     ///< false while partitioned or down
  bool agent_hung = false;   ///< host agent black-holes requests
  /// Gray failures (replica-addressed link events): responses leave this
  /// replica `link_delay` late, or not at all while the return link is
  /// down. The replica itself stays healthy — work completes, probes pass.
  sim::Ns link_delay = 0;
  bool resp_link_down = false;
  /// Crash not yet healed: set by the crash, cleared when the breaker
  /// closes again and traffic is readmitted (the TTR endpoint).
  bool down_pending = false;
  // Live-migration state (DegradeResponse::kMigrate).
  bool migrating = false;    ///< drain or blackout in progress
  bool mig_pending = false;  ///< migrated; breaker close stamps readmission
};

/// One in-flight copy of a request. A request has at most two: the primary
/// dispatch (copy 0) and, if hedging fires, the backup (copy 1).
struct Copy {
  enum class Where : std::uint8_t {
    kNone,       ///< not dispatched / already resolved
    kQueued,     ///< admitted, waiting for a worker slot
    kActive,     ///< in service (or response in flight)
    kBlackhole,  ///< dispatched into a dead/unreachable replica
    kDone        ///< this copy's response was delivered
  };
  std::uint32_t replica = 0;
  sim::Ns dispatched_ns = 0;
  /// Admission handle while kQueued; lets the hedge-loser path cancel the
  /// copy in O(1) instead of scanning the replica's pending queue.
  ReplicaQueue::Ticket ticket;
  Where where = Where::kNone;
};

struct Req {
  sim::Ns arrival = 0;
  int attempts = 0;  ///< failover attempts + hedges (shared retry budget)
  int client = 0;    ///< closed-loop issuer
  bool done = false;
  bool hedged = false;  ///< hedge already fired for the current attempt
  Copy copy[2];
  [[nodiscard]] bool outstanding(int cid) const {
    return copy[cid].where == Copy::Where::kQueued ||
           copy[cid].where == Copy::Where::kActive ||
           copy[cid].where == Copy::Where::kBlackhole;
  }
};

/// Per-request phase timestamps, recorded only when a tracer is attached;
/// turned into span trees for the slowest requests after the run.
struct TailSample {
  sim::Ns arrival = 0;
  sim::Ns start = 0;     ///< service start (queue wait ends)
  sim::Ns par_end = 0;   ///< parallel portion done
  sim::Ns io_start = 0;  ///< bounce slot acquired
  sim::Ns finish = 0;
  std::uint32_t replica = 0;
  bool done = false;
};

struct BootEvent {
  std::uint32_t replica = 0;
  sim::Ns start = 0;
  sim::Ns end = 0;
};

struct ScalerDecision {
  sim::Ns t = 0;
  int delta = 0;
  int warm = 0;
  int booting = 0;
  std::uint64_t in_service = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected_delta = 0;
};

/// Hedge lifecycle notes for the fleet trace (tracer-only).
struct HedgeEvent {
  std::uint64_t id = 0;
  sim::Ns fire_ns = 0;
  std::uint32_t primary = 0;
  std::uint32_t backup = 0;
};

std::string fmt_ns(sim::Ns t) {
  return std::to_string(static_cast<long long>(t));
}

}  // namespace

ClusterResult ClusterExperiment::run_with_model(
    const ServiceModel& model) const {
  ClusterResult res;
  res.cfg = cfg_;
  res.model = model;

  sim::VirtualClock clock;
  EventQueue events(clock);

  // Tracing is purely observational: samples are collected on the side and
  // converted to traces after the event loop drains, so the simulation's
  // RNG streams and event order are identical with or without a tracer.
  obs::Tracer* tracer =
      (cfg_.tracer && cfg_.tracer->enabled()) ? cfg_.tracer : nullptr;
  std::vector<TailSample> samples;
  if (tracer) samples.resize(cfg_.requests);
  std::vector<BootEvent> boots;
  std::vector<ScalerDecision> decisions;
  std::vector<HedgeEvent> hedge_events;

  AutoscalerConfig scfg = cfg_.scaler;
  scfg.cold_start_ns = model.cold_start_ns;
  // min_warm = 0 is legal: a fully cold fleet boots on demand, using
  // admission rejections as its only scale-up signal.
  scfg.min_warm = std::clamp(scfg.min_warm, 0, scfg.max_replicas);
  Autoscaler scaler(scfg);

  // All fault machinery is gated on a non-empty plan: with no faults the
  // run schedules no probes, consults no breakers, and produces an event
  // stream identical to a build without fault injection.
  const bool chaos = !cfg_.faults.empty();
  fault::RecoveryCosts recovery = cfg_.recovery;
  if (recovery.total_ns() <= 0) recovery.boot_ns = model.cold_start_ns;
  res.cfg.recovery = recovery;  // record the effective costs
  const std::vector<std::pair<sim::Ns, sim::Ns>> outages =
      cfg_.faults.attest_outages();
  int crashes_outstanding = 0;  ///< crashes whose breaker has not re-closed
  int windows_active = 0;       ///< open hang/partition/brownout/outage windows
  int migrations_active = 0;    ///< drains/blackouts still pending readmission

  // Tail-tolerance policies. All default-off: with hedging and outlier
  // detection disabled the decision points below reduce to the plain
  // dispatch path and the run is bit-identical to one without them.
  fault::HedgePolicy hedge(cfg_.hedge);
  fault::OutlierDetector detector(cfg_.outlier,
                                  static_cast<std::size_t>(scfg.max_replicas));
  fault::MigrationCosts mig_costs = cfg_.migration;
  if (cfg_.degrade_response == DegradeResponse::kMigrate &&
      mig_costs.total_ns() <= 0) {
    // Unmeasured fallback (tests): pre-copy a fifth of a cold start, a
    // short stop-copy blackout, no TEE costs.
    mig_costs.pre_copy_ns = model.cold_start_ns * 0.2;
    mig_costs.stop_copy_ns = model.cold_start_ns * 0.0125;
  }
  res.cfg.migration = mig_costs;  // record the effective costs
  fault::MigrationPlanner mig_planner(mig_costs, outages);
  if (cfg_.attest_svc != nullptr)
    mig_planner.attach_service(cfg_.attest_svc);

  // Replica fleet: a TeePool (least-loaded, documented deterministic
  // tie-break) fronts the per-VM queues; parked replicas are disabled.
  core::TeePool pool(cfg_.platform, core::LoadBalancePolicy::kLeastLoaded);
  std::vector<Replica> replicas(static_cast<std::size_t>(scfg.max_replicas));
  int warm = 0, booting = 0;
  for (int i = 0; i < scfg.max_replicas; ++i) {
    pool.add_member({.host = "replica-" + std::to_string(i)});
    replicas[static_cast<std::size_t>(i)].queue = ReplicaQueue(cfg_.queue);
    replicas[static_cast<std::size_t>(i)].bounce_free.assign(
        static_cast<std::size_t>(std::max(1, model.bounce_slots)), 0.0);
    const bool start_warm = i < scfg.min_warm;
    pool.set_enabled(static_cast<std::uint32_t>(i), start_warm);
    replicas[static_cast<std::size_t>(i)].state =
        start_warm ? Replica::State::kWarm : Replica::State::kParked;
    warm += start_warm;
  }
  res.peak_warm = warm;

  std::vector<fault::CircuitBreaker> breakers(
      replicas.size(), fault::CircuitBreaker(cfg_.breaker));
  std::vector<RecoverySample> rec_pending(replicas.size());
  std::vector<MigrationSample> mig_pending(replicas.size());

  sim::Rng jitter_rng(sim::hash_combine(cfg_.seed,
                                        sim::stable_hash("service-jitter")));
  ArrivalProcess arrivals(cfg_.arrival, std::max(cfg_.rate_rps, 1e-9),
                          sim::hash_combine(cfg_.seed,
                                            sim::stable_hash("arrivals")));

  // Request state lives in the engine's trial arena: one bump allocation
  // stream, freed wholesale when the queue (and its arena) dies with this
  // trial. Req is trivially destructible so skipping per-element teardown
  // is sound.
  static_assert(std::is_trivially_destructible_v<Req>);
  sim::ArenaVector<Req> reqs{sim::ArenaAllocator<Req>(events.arena())};
  reqs.reserve(std::min<std::uint64_t>(cfg_.requests, 1 << 22));
  std::uint64_t issued = 0;

  const bool closed = cfg_.closed_loop_clients > 0;

  const auto retry_policy = [&](std::uint64_t id) {
    // Per-request deterministic jitter stream, independent of event order.
    return fault::RetryPolicy(
        cfg_.retry,
        sim::hash_combine(cfg_.seed,
                          sim::hash_combine(sim::stable_hash("failover"),
                                            id)));
  };

  // Mutually recursive handlers, declared up front.
  std::function<void(std::uint32_t, std::uint64_t)> service_done;
  std::function<void(std::uint64_t, int)> respond;
  std::function<void(std::uint64_t, int)> copy_failed;
  std::function<void(int)> client_issue;
  std::function<bool(std::uint64_t, int)> dispatch;
  std::function<void(std::uint64_t)> failover;
  std::function<void(std::uint32_t)> begin_migration;
  std::function<void(std::uint32_t)> check_drained;

  auto start_service = [&](std::uint32_t idx, std::uint64_t token) {
    Replica& r = replicas[idx];
    const std::uint64_t id = token >> 1;
    const int cid = static_cast<int>(token & 1);
    if (cid == 0 && id >= cfg_.warmup_requests)
      res.queue_wait.record(clock.now() - reqs[id].arrival);
    const double j = jitter_rng.jitter(model.jitter_sigma);
    // slow_factor is 1.0 outside brownout windows, so the baseline service
    // times are bit-identical to a run without fault support.
    const sim::Ns parallel = model.parallel_ns * j * r.slow_factor;
    const sim::Ns par_end = clock.now() + parallel;
    sim::Ns io_start = par_end;
    sim::Ns finish;
    if (model.serialized_ns > 0) {
      // The I/O tail of the request contends on the VM's slot-limited
      // bounce-buffer pool: it grabs the earliest-free slot, starting when
      // both the parallel work and that slot are done.
      auto slot = std::min_element(r.bounce_free.begin(),
                                   r.bounce_free.end());
      io_start = std::max(par_end, *slot);
      finish = io_start + model.serialized_ns * j * r.slow_factor;
      *slot = finish;
    } else {
      finish = par_end;
    }
    reqs[id].copy[cid].where = Copy::Where::kActive;
    if (tracer && cid == 0 && id < samples.size())
      samples[id] = {reqs[id].arrival, clock.now(), par_end, io_start,
                     finish,           idx,         true};
    const EventId done_ev =
        events.at(finish, [&, idx, token] { service_done(idx, token); });
    r.active.emplace_back(token, done_ev);
  };

  auto try_start = [&](std::uint32_t idx) {
    while (auto t = replicas[idx].queue.start_next()) start_service(idx, *t);
  };

  // Arms the hedge timer for the primary copy of `id` dispatched at `now`.
  // Decision state is captured at fire time, not arm time: the request may
  // have completed, failed over, or already hedged by then.
  auto arm_hedge = [&](std::uint64_t id) {
    const sim::Ns delay = hedge.threshold_ns();
    if (delay <= 0) return;  // disabled or still warming up
    events.after(delay, [&, id] {
      Req& rq = reqs[id];
      if (rq.done || rq.hedged || !rq.outstanding(0)) return;
      if (!hedge.allow(res.hedges, res.offered)) return;
      // Compose with the retry budget: a hedge spends an attempt, so
      // hedges + failovers together can never exceed the per-request
      // allowance — the brownout amplification guard.
      if (!retry_policy(id).should_retry(rq.attempts + 1,
                                         clock.now() - rq.arrival,
                                         cfg_.deadline_ns))
        return;
      rq.hedged = true;
      if (dispatch(id, 1)) {
        ++rq.attempts;
        ++res.hedges;
        hedge.record_fired();
        if (tracer)
          hedge_events.push_back({id, clock.now(), rq.copy[0].replica,
                                  rq.copy[1].replica});
      }
    });
  };

  dispatch = [&](std::uint64_t id, int cid) -> bool {
    Req& rq = reqs[id];
    // The backup must land on a different replica than the other copy.
    const std::uint32_t exclude =
        cfg_.hedge.enabled && rq.outstanding(1 - cid)
            ? rq.copy[1 - cid].replica
            : core::TeePool::kNoExclude;
    core::PoolMember* m = pool.acquire_excluding(exclude);
    if (!m) {  // no warm replica at all (or only the excluded one)
      if (cid == 0) ++res.rejected;
      return false;
    }
    const std::uint32_t idx = m->index;
    Replica& r = replicas[idx];
    rq.copy[cid].replica = idx;
    rq.copy[cid].dispatched_ns = clock.now();
    if (chaos && (!r.reachable || r.agent_hung ||
                  r.state == Replica::State::kDown ||
                  r.state == Replica::State::kRecovering)) {
      // The balancer has not noticed the failure yet: the dispatch
      // black-holes, the client times out after detect_timeout_ns, and the
      // timeout feeds the replica's breaker before failing over.
      rq.copy[cid].where = Copy::Where::kBlackhole;
      events.after(cfg_.detect_timeout_ns, [&, idx, id, cid] {
        pool.release(&pool.member(idx));
        breakers[idx].record_failure(clock.now());
        if (breakers[idx].state() == fault::BreakerState::kOpen)
          pool.set_enabled(idx, false);
        copy_failed(id, cid);
      });
      if (cid == 0) arm_hedge(id);
      return true;  // in flight (will time out), not rejected
    }
    const ReplicaQueue::Ticket tk =
        r.queue.admit(id * 2 + static_cast<std::uint64_t>(cid));
    if (!tk.valid()) {
      // 429: replica backlog full
      pool.release(m);
      if (cid == 0) ++res.rejected;
      rq.copy[cid].where = Copy::Where::kNone;
      return false;
    }
    rq.copy[cid].ticket = tk;
    rq.copy[cid].where = Copy::Where::kQueued;
    if (cid == 0) arm_hedge(id);
    try_start(idx);
    return true;
  };

  // The replica-side end of service: frees the worker slot, then hands the
  // response to the return path — delivered now, delayed behind a slow
  // link, or lost to an asymmetric partition.
  service_done = [&](std::uint32_t idx, std::uint64_t token) {
    Replica& r = replicas[idx];
    const std::uint64_t id = token >> 1;
    const int cid = static_cast<int>(token & 1);
    r.queue.complete();
    if (auto it = std::find_if(r.active.begin(), r.active.end(),
                               [token](const auto& a) {
                                 return a.first == token;
                               });
        it != r.active.end())
      r.active.erase(it);
    pool.release(&pool.member(idx));
    try_start(idx);
    if (chaos && r.migrating) check_drained(idx);
    if (chaos && r.resp_link_down) {
      // Asymmetric partition: the work is done but the answer never leaves
      // the replica. The client notices at its detection timeout, charges
      // the breaker, and fails over — unless a hedge already won.
      ++res.responses_lost;
      const sim::Ns deadline = std::max(
          clock.now(), reqs[id].copy[cid].dispatched_ns +
                           cfg_.detect_timeout_ns);
      events.at(deadline, [&, idx, id, cid] {
        if (!reqs[id].done) {
          breakers[idx].record_failure(clock.now());
          if (breakers[idx].state() == fault::BreakerState::kOpen)
            pool.set_enabled(idx, false);
        }
        copy_failed(id, cid);
      });
      return;
    }
    if (chaos && r.link_delay > 0) {
      // Gray slow link: the response transits late but intact. The delay is
      // charged after the jitter draw, so slowing a link never perturbs the
      // service-time random sequence.
      events.after(r.link_delay, [&, id, cid] { respond(id, cid); });
      return;
    }
    respond(id, cid);
  };

  respond = [&](std::uint64_t id, int cid) {
    Req& rq = reqs[id];
    if (rq.done) {
      // The other copy already answered: this response is hedge waste
      // (service burned for a result nobody needs).
      rq.copy[cid].where = Copy::Where::kDone;
      ++res.hedge_waste;
      return;
    }
    rq.done = true;
    rq.copy[cid].where = Copy::Where::kDone;
    const sim::Ns lat = clock.now() - rq.arrival;
    if (id >= cfg_.warmup_requests) {
      res.latency.record(lat);
      if (chaos && (crashes_outstanding > 0 || windows_active > 0 ||
                    migrations_active > 0))
        res.latency_fault.record(lat);
    }
    ++res.completed;
    if (cid == 1) ++res.hedge_wins;
    if (cfg_.hedge.enabled) hedge.observe(lat);
    if (cfg_.outlier.enabled) detector.observe(rq.copy[cid].replica, lat);
    // First response wins: cancel the losing copy. A queued loser gives its
    // buffer slot back; an active one becomes waste when it finishes; a
    // black-holed one is dropped by its own timeout event.
    Copy& other = rq.copy[1 - cid];
    if (other.where == Copy::Where::kQueued) {
      if (replicas[other.replica].queue.cancel(other.ticket)) {
        pool.release(&pool.member(other.replica));
        ++res.hedge_cancelled;
        other.where = Copy::Where::kNone;
      }
    }
    if (closed)
      events.after(cfg_.think_ns,
                   [&, c = rq.client] { client_issue(c); });
  };

  // --- fault handling ------------------------------------------------------
  auto give_up = [&](std::uint64_t id, fault::RetryVerdict verdict) {
    reqs[id].done = true;  // a straggler copy's response must not complete it
    ++res.failed;
    const core::ErrorCode code =
        verdict == fault::RetryVerdict::kDeadlineExceeded
            ? core::ErrorCode::kDeadlineExceeded
            : core::ErrorCode::kTransport;
    ++res.failure_codes[std::string(core::to_string(code))];
    if (closed)
      events.after(cfg_.think_ns,
                   [&, c = reqs[id].client] { client_issue(c); });
  };

  failover = [&](std::uint64_t id) {
    ++res.failovers;
    Req& rq = reqs[id];
    const int attempt = ++rq.attempts;
    const fault::RetryPolicy policy = retry_policy(id);
    const fault::RetryVerdict v =
        policy.verdict(attempt, clock.now() - rq.arrival, cfg_.deadline_ns);
    if (v != fault::RetryVerdict::kRetry) {
      give_up(id, v);
      return;
    }
    ++res.retries;
    events.after(policy.backoff_ns(attempt), [&, id] {
      reqs[id].hedged = false;  // the new attempt may hedge afresh
      if (!dispatch(id, 0) && closed)
        events.after(cfg_.think_ns,
                     [&, c = reqs[id].client] { client_issue(c); });
    });
  };

  // One copy died (black-hole timeout, lost response, crash eviction).
  // Only when it was the *last* outstanding copy does the request fail
  // over — a surviving hedge copy keeps the request alive on its own.
  copy_failed = [&](std::uint64_t id, int cid) {
    Req& rq = reqs[id];
    rq.copy[cid].where = Copy::Where::kNone;
    if (rq.done) return;                 // the other copy already won
    if (rq.outstanding(1 - cid)) return; // still racing on another replica
    failover(id);
  };

  auto apply_crash = [&](std::uint32_t idx) {
    Replica& r = replicas[idx];
    if (r.state == Replica::State::kParked ||
        r.state == Replica::State::kDown ||
        r.state == Replica::State::kRecovering)
      return;  // nothing to kill, or already dead
    ++res.crashes;
    ++crashes_outstanding;
    // A dead incarnation's session ticket must not verify its replacement.
    if (cfg_.attest_svc != nullptr) cfg_.attest_svc->on_reboot(idx);
    if (r.state == Replica::State::kBooting) --booting;
    if (r.state == Replica::State::kWarm) --warm;
    r.state = Replica::State::kDown;
    r.down_pending = true;
    if (r.migrating) {  // a crash mid-migration aborts the migration
      r.migrating = false;
      if (r.mig_pending) {
        r.mig_pending = false;
        --migrations_active;
      }
    }
    r.reachable = false;
    rec_pending[idx] = RecoverySample{};
    rec_pending[idx].replica = idx;
    rec_pending[idx].crash_ns = clock.now();
    std::fill(r.bounce_free.begin(), r.bounce_free.end(), 0.0);
    // Everything on the replica dies with it: queued requests and the ones
    // mid-service. Their clients notice after the detection timeout and
    // fail over. The pool keeps routing here until the breaker opens —
    // failure detection is observational, not oracle knowledge. The dead
    // incarnation's scheduled completions are cancelled outright; recovery
    // and the probe chain always outlast their orphaned finish times, so
    // the run's makespan is unaffected.
    std::vector<std::uint64_t> victims = r.queue.evict_all();
    for (const auto& [token, done_ev] : r.active) {
      events.cancel(done_ev);
      victims.push_back(token);
    }
    r.active.clear();
    for (std::size_t k = 0; k < victims.size(); ++k)
      pool.release(&pool.member(idx));
    for (const std::uint64_t token : victims) {
      const std::uint64_t id = token >> 1;
      const int cid = static_cast<int>(token & 1);
      events.after(cfg_.detect_timeout_ns,
                   [&, id, cid] { copy_failed(id, cid); });
    }
  };

  auto start_recovery = [&](std::uint32_t idx) {
    Replica& r = replicas[idx];
    if (r.state != Replica::State::kDown) return;
    r.state = Replica::State::kRecovering;
    RecoverySample& rs = rec_pending[idx];
    rs.boot_start_ns = clock.now();
    rs.boot_end_ns = clock.now() + recovery.boot_ns;
    // Re-attestation (secure fleets only) stalls behind any attestation-
    // service outage window — normal replicas skip the step entirely,
    // which is exactly the availability asymmetry the chaos bench reports.
    sim::Ns attest_start = rs.boot_end_ns;
    if (recovery.attest_ns > 0 && cfg_.attest_svc != nullptr) {
      // Service-backed: warm collateral skips the network share and sails
      // through an outage window; only a cache miss stalls behind it.
      rs.attest_start_ns = attest_start;
      rs.attest_end_ns = cfg_.attest_svc->reverify_done_ns(attest_start);
    } else {
      if (recovery.attest_ns > 0) {
        for (const auto& [s, e] : outages)
          if (attest_start >= s && attest_start < e) attest_start = e;
      }
      rs.attest_start_ns = attest_start;
      rs.attest_end_ns =
          attest_start + (recovery.attest_ns > 0 ? recovery.attest_ns : 0.0);
    }
    events.at(rs.attest_end_ns, [&, idx] {
      Replica& r2 = replicas[idx];
      if (r2.state != Replica::State::kRecovering) return;
      r2.state = Replica::State::kWarm;
      r2.reachable = true;
      r2.agent_hung = false;
      r2.slow_factor = 1.0;
      r2.link_delay = 0;
      r2.resp_link_down = false;
      // Still pool-disabled: traffic is readmitted only once a half-open
      // health probe closes the breaker (that close stamps recovered_ns).
    });
  };

  // --- live migration ------------------------------------------------------
  check_drained = [&](std::uint32_t idx) {
    Replica& r = replicas[idx];
    if (!r.migrating || r.mig_pending) return;
    if (!r.queue.idle() || !r.active.empty()) return;
    // Backlog drained: plan the blackout. Pre-copy has been running since
    // detection; stop-copy + (secure) re-accept + re-attest start once both
    // the drain and the pre-copy are done.
    MigrationSample& ms = mig_pending[idx];
    ms.sched = mig_planner.plan(ms.sched.detect_ns, clock.now());
    r.mig_pending = true;
    events.at(ms.sched.blackout_end_ns, [&, idx] {
      Replica& r2 = replicas[idx];
      if (!r2.migrating) return;  // aborted by a crash
      r2.migrating = false;
      // The replica now runs on the target host: the degraded source's
      // gray condition no longer applies to it.
      r2.slow_factor = 1.0;
      r2.link_delay = 0;
      r2.resp_link_down = false;
      detector.forgive(idx);
      // Still pool-disabled: the breaker's half-open probe readmits
      // traffic and stamps readmitted_ns, symmetrical with recovery.
    });
  };

  begin_migration = [&](std::uint32_t idx) {
    Replica& r = replicas[idx];
    if (r.migrating || r.state != Replica::State::kWarm) return;
    r.migrating = true;
    ++migrations_active;
    // The target host is a different TEE instance: the source's session
    // ticket dies at detection, re-attest mints a fresh one on the target.
    if (cfg_.attest_svc != nullptr) cfg_.attest_svc->on_migration(idx);
    MigrationSample& ms = mig_pending[idx];
    ms = MigrationSample{};
    ms.replica = idx;
    ms.sched.detect_ns = clock.now();
    // Pick the landing host now, from the fleet's backlog at detection
    // time: warm non-migrating peers are candidates, the source is not.
    std::vector<fault::PlacementCandidate> cands;
    for (std::uint32_t i = 0; i < replicas.size(); ++i) {
      if (i == idx || replicas[i].state != Replica::State::kWarm ||
          replicas[i].migrating)
        continue;
      cands.push_back(
          {.host = "replica-" + std::to_string(i),
           .load = static_cast<std::uint64_t>(replicas[i].queue.backlog()),
           .rack = "rack-" + std::to_string(i / 4)});
    }
    if (!cands.empty())
      ms.target_host =
          cands[fault::choose_target(cfg_.placement, cands,
                                     "rack-" + std::to_string(idx / 4))]
              .host;
    // Admissions are already stopped (the gray trip disabled the pool
    // member); the backlog keeps serving while pre-copy runs underneath.
    check_drained(idx);
  };

  std::function<void()> probe = [&] {
    const sim::Ns now = clock.now();
    for (std::uint32_t i = 0; i < replicas.size(); ++i) {
      Replica& r = replicas[i];
      if (r.state == Replica::State::kParked ||
          r.state == Replica::State::kBooting)
        continue;
      fault::CircuitBreaker& br = breakers[i];
      // Binary health: a migrating replica reports unhealthy so the
      // breaker cannot re-close mid-drain. Gray failures pass this check —
      // that is the point — and are caught by the outlier branch below.
      const bool healthy = r.state == Replica::State::kWarm && r.reachable &&
                           !r.agent_hung && !r.migrating;
      if (br.state() == fault::BreakerState::kClosed) {
        if (healthy && detector.outlier(i)) {
          // Slow-but-alive: feed the EWMA verdict into the breaker as
          // failure evidence. Consecutive flagged probes trip it.
          br.record_failure(now);
          if (br.state() == fault::BreakerState::kOpen) {
            pool.set_enabled(i, false);
            ++res.gray_trips;
            if (cfg_.degrade_response == DegradeResponse::kReboot)
              apply_crash(i);
            else if (cfg_.degrade_response == DegradeResponse::kMigrate)
              begin_migration(i);
            // kNone: sit out the cooldown; forgiveness below gives the
            // replica a fresh EWMA when it is probed again.
          }
        } else if (healthy) {
          br.record_success(now);
        } else {
          br.record_failure(now);
          if (br.state() == fault::BreakerState::kOpen)
            pool.set_enabled(i, false);
        }
      } else {
        const bool was_open = br.state() == fault::BreakerState::kOpen;
        if (br.allow(now)) {  // open past cooldown, or half-open idle
          if (was_open) detector.forgive(i);  // fresh EWMA for readmission
          if (healthy) {
            br.record_success(now);
            if (br.state() == fault::BreakerState::kClosed &&
                r.state == Replica::State::kWarm) {
              pool.set_enabled(i, true);
              if (r.down_pending) {
                r.down_pending = false;
                --crashes_outstanding;
                ++warm;
                res.peak_warm = std::max(res.peak_warm, warm);
                rec_pending[i].recovered_ns = now;
                res.recoveries.push_back(rec_pending[i]);
              }
              if (r.mig_pending) {
                r.mig_pending = false;
                --migrations_active;
                mig_pending[i].readmitted_ns = now;
                res.migrations.push_back(mig_pending[i]);
              }
            }
          } else {
            br.record_failure(now);
          }
        }
      }
      if (r.state == Replica::State::kDown &&
          br.state() == fault::BreakerState::kOpen)
        start_recovery(i);
    }
    bool breakers_open = false;
    for (const fault::CircuitBreaker& b : breakers)
      if (b.state() != fault::BreakerState::kClosed) breakers_open = true;
    std::uint64_t busy = 0;
    for (const Replica& r : replicas) busy += r.queue.backlog();
    if (issued < cfg_.requests || busy > 0 || crashes_outstanding > 0 ||
        windows_active > 0 || breakers_open || migrations_active > 0)
      events.after(cfg_.probe_interval_ns, Action::ref(probe));
  };

  // --- load generation -----------------------------------------------------
  std::function<void()> on_open_arrival = [&] {
    const std::uint64_t id = issued++;
    Req rq;
    rq.arrival = clock.now();
    reqs.push_back(rq);
    ++res.offered;
    dispatch(id, 0);
    if (issued < cfg_.requests)
      events.after(arrivals.next_gap(), Action::ref(on_open_arrival));
  };

  client_issue = [&](int c) {
    if (issued >= cfg_.requests) return;
    const std::uint64_t id = issued++;
    Req rq;
    rq.arrival = clock.now();
    rq.client = c;
    reqs.push_back(rq);
    ++res.offered;
    if (!dispatch(id, 0))  // rejected: the client backs off one think time
      events.after(cfg_.think_ns, [&, c] { client_issue(c); });
  };

  if (closed) {
    for (int c = 0; c < cfg_.closed_loop_clients; ++c)
      events.after(static_cast<double>(c) * sim::kUs,
                   [&, c] { client_issue(c); });
  } else if (cfg_.requests > 0) {
    events.after(arrivals.next_gap(), Action::ref(on_open_arrival));
  }

  // --- autoscaler ticks ----------------------------------------------------
  std::uint64_t last_rejected = 0;
  std::function<void()> tick = [&] {
    std::uint64_t in_service = 0, queued = 0;
    for (const Replica& r : replicas) {
      in_service += static_cast<std::uint64_t>(r.queue.in_service());
      queued += r.queue.queued();
    }
    const std::uint64_t rejected_delta = res.rejected - last_rejected;
    last_rejected = res.rejected;
    const int delta = scaler.evaluate(warm, booting, in_service, queued,
                                      cfg_.queue.concurrency, clock.now(),
                                      rejected_delta);
    if (tracer && delta != 0)
      decisions.push_back({clock.now(), delta, warm, booting, in_service,
                           queued, rejected_delta});
    if (delta > 0) {
      int to_boot = delta;
      for (std::uint32_t i = 0;
           i < replicas.size() && to_boot > 0; ++i) {
        if (replicas[i].state != Replica::State::kParked) continue;
        replicas[i].state = Replica::State::kBooting;
        ++booting;
        --to_boot;
        const sim::Ns boot_start = clock.now();
        events.after(scfg.cold_start_ns, [&, i, boot_start] {
          if (replicas[i].state != Replica::State::kBooting) return;
          replicas[i].state = Replica::State::kWarm;
          pool.set_enabled(i, true);
          --booting;
          ++warm;
          res.peak_warm = std::max(res.peak_warm, warm);
          if (tracer) boots.push_back({i, boot_start, clock.now()});
        });
      }
    } else if (delta < 0) {
      // Park the highest-index warm replica that is fully idle.
      for (std::uint32_t i = static_cast<std::uint32_t>(replicas.size());
           i-- > 0;) {
        if (replicas[i].state != Replica::State::kWarm) continue;
        if (!replicas[i].queue.idle() || pool.member(i).in_flight != 0)
          continue;
        // Never park a replica mid-recovery or mid-migration: it looks
        // idle only because its breaker still holds traffic off it.
        if (chaos && (replicas[i].down_pending || replicas[i].migrating ||
                      replicas[i].mig_pending ||
                      breakers[i].state() != fault::BreakerState::kClosed))
          continue;
        replicas[i].state = Replica::State::kParked;
        pool.set_enabled(i, false);
        --warm;
        break;
      }
    }
    const bool work_left =
        issued < cfg_.requests || in_service + queued > 0 || booting > 0 ||
        (chaos && (crashes_outstanding > 0 || windows_active > 0 ||
                   migrations_active > 0));
    if (work_left) events.after(scfg.tick_ns, Action::ref(tick));
  };
  events.after(scfg.tick_ns, Action::ref(tick));

  // --- fault replay --------------------------------------------------------
  if (chaos) {
    events.after(cfg_.probe_interval_ns, Action::ref(probe));
    for (const fault::FaultEvent& e : cfg_.faults.events()) {
      const std::uint32_t idx = e.replica;
      switch (e.kind) {
        case fault::FaultKind::kVmCrash:
          if (idx < replicas.size())
            events.at(e.at_ns, [&, idx] { apply_crash(idx); });
          break;
        case fault::FaultKind::kAgentHang:
        case fault::FaultKind::kPartition:
          if (idx < replicas.size()) {
            const bool hang = e.kind == fault::FaultKind::kAgentHang;
            events.at(e.at_ns, [&, idx, hang] {
              ++windows_active;
              if (hang)
                replicas[idx].agent_hung = true;
              else
                replicas[idx].reachable = false;
            });
            events.at(e.at_ns + e.duration_ns, [&, idx, hang] {
              --windows_active;
              // If a crash superseded the window, recovery owns the flags.
              if (replicas[idx].state == Replica::State::kDown ||
                  replicas[idx].state == Replica::State::kRecovering)
                return;
              if (hang)
                replicas[idx].agent_hung = false;
              else
                replicas[idx].reachable = true;
            });
          }
          break;
        case fault::FaultKind::kBrownout:
          if (idx < replicas.size()) {
            events.at(e.at_ns, [&, idx, s = e.severity] {
              ++windows_active;
              replicas[idx].slow_factor = s;
            });
            events.at(e.at_ns + e.duration_ns, [&, idx] {
              --windows_active;
              if (replicas[idx].state == Replica::State::kDown ||
                  replicas[idx].state == Replica::State::kRecovering)
                return;
              replicas[idx].slow_factor = 1.0;
            });
          }
          break;
        case fault::FaultKind::kLinkSlow:
        case fault::FaultKind::kLinkDown:
          // The shared classifier decides which link windows belong here:
          // replica-addressed ones only. Host-addressed (src/dst) windows
          // are net::Network's business via fault::LinkFaultDriver — and
          // the sharded frontend replays *both* kinds through the fabric.
          if (const auto view = fault::replica_link_view(e);
              view && idx < replicas.size()) {
            events.at(e.at_ns, [&, idx, v = *view] {
              ++windows_active;
              if (v.down)
                replicas[idx].resp_link_down = true;
              else
                replicas[idx].link_delay = v.delay_ns;
            });
            events.at(e.at_ns + e.duration_ns, [&, idx, down = view->down] {
              --windows_active;
              if (replicas[idx].state == Replica::State::kDown ||
                  replicas[idx].state == Replica::State::kRecovering)
                return;
              if (replicas[idx].migrating || replicas[idx].mig_pending)
                return;  // migration already moved it off the bad host
              if (down)
                replicas[idx].resp_link_down = false;
              else
                replicas[idx].link_delay = 0;
            });
          }
          break;
        case fault::FaultKind::kAttestOutage:
          // Consulted via `outages` when scheduling re-attestation; the
          // window only needs to keep the probe/tick chains alive.
          events.at(e.at_ns, [&] { ++windows_active; });
          events.at(e.at_ns + e.duration_ns, [&] { --windows_active; });
          break;
        case fault::FaultKind::kShardJoin:
        case fault::FaultKind::kShardLeave:
        case fault::FaultKind::kReplicaAdd:
        case fault::FaultKind::kReplicaRemove:
        case fault::FaultKind::kJoinCrash:
          // Topology churn (and faults against controller-originated scale
          // events) address the sharded admission plane; the single-gateway
          // cluster has no ring to change.
          break;
      }
    }
  }

  events.run();

  res.makespan_ns = clock.now();
  res.scaler_trace = scaler.trace();
  res.hedge_threshold_ns = hedge.threshold_ns();

  if (tracer) {
    const std::string run_name =
        cfg_.platform + "/" + cfg_.function +
        (cfg_.secure ? "/secure" : "/normal");

    // Tail traces: the trace_tail slowest steady-state requests, each a
    // well-nested tree of queue-wait / service / bounce-wait / bounce.
    std::vector<std::uint64_t> ids;
    for (std::uint64_t id = cfg_.warmup_requests; id < samples.size(); ++id)
      if (samples[id].done) ids.push_back(id);
    std::sort(ids.begin(), ids.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                const sim::Ns la = samples[a].finish - samples[a].arrival;
                const sim::Ns lb = samples[b].finish - samples[b].arrival;
                return la != lb ? la > lb : a < b;
              });
    const auto k = std::min<std::size_t>(
        ids.size(), static_cast<std::size_t>(std::max(cfg_.trace_tail, 0)));
    for (std::size_t i = 0; i < k; ++i) {
      const TailSample& s = samples[ids[i]];
      obs::Trace& tr = tracer->start_trace(
          run_name + "/tail#" + std::to_string(ids[i]));
      const std::uint32_t root = tr.add_span(
          obs::Category::kInvoke, "request", s.arrival, s.finish);
      tr.set_attr(root, "replica", "replica-" + std::to_string(s.replica));
      tr.set_attr(root, "latency_ns", fmt_ns(s.finish - s.arrival));
      if (s.start > s.arrival)
        tr.add_span(obs::Category::kQueueWait, "queue.wait", s.arrival,
                    s.start, root);
      tr.add_span(obs::Category::kService, "service.parallel", s.start,
                  s.par_end, root);
      if (s.io_start > s.par_end)
        tr.add_span(obs::Category::kBounceWait, "bounce.wait", s.par_end,
                    s.io_start, root);
      if (s.finish > s.io_start)
        tr.add_span(obs::Category::kBounce, "bounce.io", s.io_start,
                    s.finish, root);
    }

    // Fleet trace: cold-start spans plus every autoscaler decision.
    obs::Trace& fleet = tracer->start_trace(run_name + "/fleet");
    for (const BootEvent& b : boots) {
      const std::uint32_t sp = fleet.add_span(
          obs::Category::kColdStart, "replica.boot", b.start, b.end);
      fleet.set_attr(sp, "replica", "replica-" + std::to_string(b.replica));
    }
    for (const ScalerDecision& d : decisions)
      fleet.instant_at("scaler.decision", d.t,
                       {{"delta", std::to_string(d.delta)},
                        {"warm", std::to_string(d.warm)},
                        {"booting", std::to_string(d.booting)},
                        {"in_service", std::to_string(d.in_service)},
                        {"queued", std::to_string(d.queued)},
                        {"rejected_delta",
                         std::to_string(d.rejected_delta)}});

    if (chaos) {
      // Every injected fault as a span; crashes stretch to the matching
      // recovery so the outage is visible at a glance.
      for (const fault::FaultEvent& e : cfg_.faults.events()) {
        sim::Ns end = e.at_ns + e.duration_ns;
        if (e.kind == fault::FaultKind::kVmCrash) {
          end = e.at_ns;
          for (const RecoverySample& rs : res.recoveries)
            if (rs.replica == e.replica && rs.crash_ns == e.at_ns) {
              end = rs.recovered_ns;
              break;
            }
        }
        const std::uint32_t sp = fleet.add_span(
            obs::Category::kFault,
            "fault." + std::string(fault::to_string(e.kind)), e.at_ns, end);
        if (e.src.empty())
          fleet.set_attr(sp, "replica",
                         "replica-" + std::to_string(e.replica));
        else
          fleet.set_attr(sp, "link", e.src + "->" + e.dst);
      }
      // Recovery spans with boot + re-attest children: the boot/attest
      // sub-intervals are what attribute the secure-vs-normal TTR gap.
      for (const RecoverySample& rs : res.recoveries) {
        const std::uint32_t sp =
            fleet.add_span(obs::Category::kRecovery, "replica.recovery",
                           rs.crash_ns, rs.recovered_ns);
        fleet.set_attr(sp, "replica",
                       "replica-" + std::to_string(rs.replica));
        fleet.set_attr(sp, "ttr_ns", fmt_ns(rs.ttr_ns()));
        fleet.add_span(obs::Category::kColdStart, "recovery.boot",
                       rs.boot_start_ns, rs.boot_end_ns, sp);
        if (rs.attest_end_ns > rs.attest_start_ns)
          fleet.add_span(obs::Category::kAttest, "recovery.attest",
                         rs.attest_start_ns, rs.attest_end_ns, sp);
      }
      // Hedge lifecycle: fires as instants (wins/waste are run aggregates;
      // per-fire attribution names both contenders).
      for (const HedgeEvent& h : hedge_events)
        fleet.instant_at(
            "hedge.fire", h.fire_ns,
            {{"request", std::to_string(h.id)},
             {"primary", "replica-" + std::to_string(h.primary)},
             {"backup", "replica-" + std::to_string(h.backup)}});
      // Migration phase trees, symmetrical with recovery spans.
      for (const MigrationSample& ms : res.migrations) {
        const fault::MigrationSchedule& sc = ms.sched;
        const std::uint32_t sp =
            fleet.add_span(obs::Category::kMigration, "replica.migration",
                           sc.detect_ns, ms.readmitted_ns);
        fleet.set_attr(sp, "replica",
                       "replica-" + std::to_string(ms.replica));
        fleet.set_attr(sp, "ttr_ns", fmt_ns(ms.ttr_ns()));
        if (!ms.target_host.empty()) {
          fleet.set_attr(sp, "target", ms.target_host);
          fleet.set_attr(sp, "placement",
                         std::string(fault::to_string(cfg_.placement)));
        }
        fleet.add_span(obs::Category::kMigration, "migrate.precopy",
                       sc.detect_ns, sc.precopy_end_ns, sp);
        if (sc.drain_end_ns > sc.detect_ns)
          fleet.add_span(obs::Category::kMigration, "migrate.drain",
                         sc.detect_ns, sc.drain_end_ns, sp);
        fleet.add_span(obs::Category::kMigration, "migrate.stopcopy",
                       sc.blackout_start_ns,
                       sc.blackout_start_ns + mig_costs.stop_copy_ns, sp);
        if (mig_costs.reaccept_ns > 0)
          fleet.add_span(obs::Category::kMigration, "migrate.reaccept",
                         sc.blackout_start_ns + mig_costs.stop_copy_ns,
                         sc.blackout_start_ns + mig_costs.stop_copy_ns +
                             mig_costs.reaccept_ns,
                         sp);
        if (sc.blackout_end_ns > sc.reattest_start_ns)
          fleet.add_span(obs::Category::kAttest, "migrate.reattest",
                         sc.reattest_start_ns, sc.blackout_end_ns, sp);
      }
    }

    // Run aggregates into the central registry.
    obs::Registry& reg = tracer->registry();
    reg.counter("cluster.offered") += res.offered;
    reg.counter("cluster.completed") += res.completed;
    reg.counter("cluster.rejected") += res.rejected;
    reg.gauge("cluster.peak_warm") = res.peak_warm;
    reg.histogram("cluster.latency_ns").merge(res.latency);
    reg.histogram("cluster.queue_wait_ns").merge(res.queue_wait);
    if (chaos) {
      reg.counter("cluster.failed") += res.failed;
      reg.counter("cluster.retries") += res.retries;
      reg.counter("cluster.failovers") += res.failovers;
      reg.counter("cluster.crashes") += res.crashes;
      reg.histogram("cluster.latency_fault_ns").merge(res.latency_fault);
      if (cfg_.hedge.enabled) {
        reg.counter("cluster.hedges") += res.hedges;
        reg.counter("cluster.hedge_wins") += res.hedge_wins;
        reg.counter("cluster.hedge_waste") += res.hedge_waste;
      }
      if (cfg_.outlier.enabled)
        reg.counter("cluster.gray_trips") += res.gray_trips;
      if (!res.migrations.empty())
        reg.counter("cluster.migrations") += res.migrations.size();
    }
  }
  return res;
}

}  // namespace confbench::sched

#include "sched/cluster.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "fault/retry.h"
#include "metrics/json.h"
#include "sim/clock.h"
#include "tee/registry.h"
#include "vm/guest_vm.h"

namespace confbench::sched {

double ServiceModel::replica_capacity_rps(int concurrency) const {
  const double total_s = total_ns() / sim::kSec;
  if (total_s <= 0) return 0;
  // Workers overlap the parallel portion; the serialized (bounce-buffer)
  // portion funnels through the per-VM slot pool and caps the VM's rate.
  const double parallel_rate = static_cast<double>(concurrency) / total_s;
  if (serialized_ns <= 0) return parallel_rate;
  const double bounce_rate =
      std::max(1, bounce_slots) * sim::kSec / serialized_ns;
  return std::min(parallel_rate, bounce_rate);
}

ServiceModel ServiceModel::calibrate(core::ConfBench& system,
                                     const std::string& function,
                                     const std::string& language,
                                     const std::string& platform, bool secure,
                                     int probes) {
  tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat) throw std::invalid_argument("unknown platform: " + platform);
  const sim::PlatformCosts& costs = plat->costs(secure);

  double total = 0, io_share = 0;
  int n = 0;
  for (int t = 0; t < probes; ++t) {
    const core::InvocationRecord rec = system.gateway().invoke(
        {.function = function,
         .language = language,
         .platform = platform,
         .secure = secure,
         .trial = static_cast<std::uint64_t>(t)});
    if (!rec.ok())
      throw std::runtime_error("calibration invoke failed: " + rec.error);
    total += rec.function_ns;
    const metrics::PerfCounters& pc = rec.perf;
    const double parts = pc.t_compute_ns + pc.t_memory_ns + pc.t_os_ns +
                         pc.t_io_ns + pc.t_other_ns;
    if (parts > 0) io_share += pc.t_io_ns / parts;
    ++n;
  }

  ServiceModel m;
  const double mean_total = n ? total / n : 1 * sim::kMs;
  io_share = n ? io_share / n : 0;
  // Only platforms that actually route DMA through bounce buffers (TDX
  // swiotlb, CCA realm shared pages) serialize their I/O portion; SNP's
  // shared-page path and every normal VM keep I/O on the parallel side.
  const bool bounced = secure && costs.io.bounce_fixed_ns > 0;
  m.serialized_ns = bounced ? mean_total * io_share : 0;
  m.parallel_ns = mean_total - m.serialized_ns;
  m.jitter_sigma = costs.trial_jitter_sigma;

  // TEE-specific cold start: boot a throwaway VM of the same kind the
  // autoscaler would add (firmware/kernel plus, on confidential VMs, the
  // eager private-memory acceptance charged by GuestVm::boot).
  vm::VmConfig vc{platform + "/coldstart", plat, secure, vm::UnitKind::kVm,
                  8, 16ULL << 30};
  m.cold_start_ns = vm::GuestVm(vc).boot();
  return m;
}

double ClusterResult::throughput_rps() const {
  return makespan_ns > 0
             ? static_cast<double>(completed) / (makespan_ns / sim::kSec)
             : 0.0;
}

sim::Ns ClusterResult::mean_ttr_ns() const {
  if (recoveries.empty()) return 0;
  sim::Ns sum = 0;
  for (const RecoverySample& r : recoveries) sum += r.ttr_ns();
  return sum / static_cast<double>(recoveries.size());
}

std::string ClusterResult::to_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("function").value(cfg.function);
  w.key("language").value(cfg.language);
  w.key("platform").value(cfg.platform);
  w.key("secure").value(cfg.secure);
  w.key("arrival").value(std::string(to_string(cfg.arrival)));
  w.key("rate_rps").value(cfg.rate_rps);
  w.key("seed").value(cfg.seed);
  w.key("model");
  w.begin_object();
  w.key("parallel_ns").value(model.parallel_ns);
  w.key("serialized_ns").value(model.serialized_ns);
  w.key("bounce_slots").value(model.bounce_slots);
  w.key("jitter_sigma").value(model.jitter_sigma);
  w.key("cold_start_ns").value(model.cold_start_ns);
  w.end_object();
  w.key("offered").value(offered);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("failed").value(failed);
  w.key("retries").value(retries);
  w.key("failovers").value(failovers);
  w.key("crashes").value(crashes);
  w.key("availability").value(availability());
  w.key("mean_ttr_ns").value(mean_ttr_ns());
  w.key("latency_fault_p99_ns").value(latency_fault.p99());
  w.key("makespan_ns").value(makespan_ns);
  w.key("throughput_rps").value(throughput_rps());
  w.key("peak_warm").value(peak_warm);
  w.key("latency_ns");
  w.begin_object();
  w.key("p50").value(latency.p50());
  w.key("p95").value(latency.p95());
  w.key("p99").value(latency.p99());
  w.key("p999").value(latency.p999());
  w.key("mean").value(latency.mean());
  w.key("max").value(latency.max());
  w.end_object();
  w.key("queue_wait_p99_ns").value(queue_wait.p99());
  w.end_object();
  return w.str();
}

double ClusterExperiment::fleet_capacity_rps(const ServiceModel& model) const {
  return model.replica_capacity_rps(cfg_.queue.concurrency) *
         cfg_.scaler.max_replicas;
}

ClusterResult ClusterExperiment::run(core::ConfBench& system) const {
  const ServiceModel model =
      ServiceModel::calibrate(system, cfg_.function, cfg_.language,
                              cfg_.platform, cfg_.secure,
                              cfg_.calibration_probes);
  if (!cfg_.faults.empty() && cfg_.recovery.total_ns() <= 0) {
    // Measure replica replacement through the real boot + re-attestation
    // path, so secure fleets recover mechanically slower for the same
    // reasons their VMs boot and attest slower.
    ClusterConfig patched = cfg_;
    patched.recovery = fault::measure_recovery(cfg_.platform, cfg_.secure);
    return ClusterExperiment(patched).run_with_model(model);
  }
  return run_with_model(model);
}

namespace {

struct Replica {
  enum class State : std::uint8_t {
    kParked,
    kBooting,
    kWarm,
    kDown,       ///< crashed; breaker must open before replacement starts
    kRecovering  ///< replacement booting (+ re-attesting when secure)
  };
  ReplicaQueue queue;
  State state = State::kParked;
  /// Virtual time at which each swiotlb slot of this VM becomes free; a
  /// request's serialized portion takes the earliest-free slot.
  std::vector<sim::Ns> bounce_free;
  /// Bumped on crash so completion events scheduled against the previous
  /// incarnation become no-ops (the event queue has no cancellation).
  std::uint64_t epoch = 0;
  /// Requests currently in service here; a crash kills all of them.
  std::vector<std::uint64_t> active;
  double slow_factor = 1.0;  ///< >1 during a brownout window
  bool reachable = true;     ///< false while partitioned or down
  bool agent_hung = false;   ///< host agent black-holes requests
  /// Crash not yet healed: set by the crash, cleared when the breaker
  /// closes again and traffic is readmitted (the TTR endpoint).
  bool down_pending = false;
};

/// Per-request phase timestamps, recorded only when a tracer is attached;
/// turned into span trees for the slowest requests after the run.
struct TailSample {
  sim::Ns arrival = 0;
  sim::Ns start = 0;     ///< service start (queue wait ends)
  sim::Ns par_end = 0;   ///< parallel portion done
  sim::Ns io_start = 0;  ///< bounce slot acquired
  sim::Ns finish = 0;
  std::uint32_t replica = 0;
  bool done = false;
};

struct BootEvent {
  std::uint32_t replica = 0;
  sim::Ns start = 0;
  sim::Ns end = 0;
};

struct ScalerDecision {
  sim::Ns t = 0;
  int delta = 0;
  int warm = 0;
  int booting = 0;
  std::uint64_t in_service = 0;
  std::uint64_t queued = 0;
};

std::string fmt_ns(sim::Ns t) {
  return std::to_string(static_cast<long long>(t));
}

}  // namespace

ClusterResult ClusterExperiment::run_with_model(
    const ServiceModel& model) const {
  ClusterResult res;
  res.cfg = cfg_;
  res.model = model;

  sim::VirtualClock clock;
  EventQueue events(clock);

  // Tracing is purely observational: samples are collected on the side and
  // converted to traces after the event loop drains, so the simulation's
  // RNG streams and event order are identical with or without a tracer.
  obs::Tracer* tracer =
      (cfg_.tracer && cfg_.tracer->enabled()) ? cfg_.tracer : nullptr;
  std::vector<TailSample> samples;
  if (tracer) samples.resize(cfg_.requests);
  std::vector<BootEvent> boots;
  std::vector<ScalerDecision> decisions;

  AutoscalerConfig scfg = cfg_.scaler;
  scfg.cold_start_ns = model.cold_start_ns;
  // min_warm = 0 is legal: a fully cold fleet boots on demand, using
  // admission rejections as its only scale-up signal.
  scfg.min_warm = std::clamp(scfg.min_warm, 0, scfg.max_replicas);
  Autoscaler scaler(scfg);

  // All fault machinery is gated on a non-empty plan: with no faults the
  // run schedules no probes, consults no breakers, and produces an event
  // stream identical to a build without fault injection.
  const bool chaos = !cfg_.faults.empty();
  fault::RecoveryCosts recovery = cfg_.recovery;
  if (recovery.total_ns() <= 0) recovery.boot_ns = model.cold_start_ns;
  res.cfg.recovery = recovery;  // record the effective costs
  const std::vector<std::pair<sim::Ns, sim::Ns>> outages =
      cfg_.faults.attest_outages();
  int crashes_outstanding = 0;  ///< crashes whose breaker has not re-closed
  int windows_active = 0;       ///< open hang/partition/brownout/outage windows

  // Replica fleet: a TeePool (least-loaded, documented deterministic
  // tie-break) fronts the per-VM queues; parked replicas are disabled.
  core::TeePool pool(cfg_.platform, core::LoadBalancePolicy::kLeastLoaded);
  std::vector<Replica> replicas(static_cast<std::size_t>(scfg.max_replicas));
  int warm = 0, booting = 0;
  for (int i = 0; i < scfg.max_replicas; ++i) {
    pool.add_member({.host = "replica-" + std::to_string(i)});
    replicas[static_cast<std::size_t>(i)].queue = ReplicaQueue(cfg_.queue);
    replicas[static_cast<std::size_t>(i)].bounce_free.assign(
        static_cast<std::size_t>(std::max(1, model.bounce_slots)), 0.0);
    const bool start_warm = i < scfg.min_warm;
    pool.set_enabled(static_cast<std::uint32_t>(i), start_warm);
    replicas[static_cast<std::size_t>(i)].state =
        start_warm ? Replica::State::kWarm : Replica::State::kParked;
    warm += start_warm;
  }
  res.peak_warm = warm;

  std::vector<fault::CircuitBreaker> breakers(
      replicas.size(), fault::CircuitBreaker(cfg_.breaker));
  std::vector<RecoverySample> rec_pending(replicas.size());

  sim::Rng jitter_rng(sim::hash_combine(cfg_.seed,
                                        sim::stable_hash("service-jitter")));
  ArrivalProcess arrivals(cfg_.arrival, std::max(cfg_.rate_rps, 1e-9),
                          sim::hash_combine(cfg_.seed,
                                            sim::stable_hash("arrivals")));

  std::vector<double> arrival_ns;
  std::vector<int> attempt_of;  ///< failover attempts per request id
  std::vector<int> client_of;   // closed-loop only
  arrival_ns.reserve(std::min<std::uint64_t>(cfg_.requests, 1 << 22));
  std::uint64_t issued = 0;

  const bool closed = cfg_.closed_loop_clients > 0;

  // Mutually recursive handlers, declared up front.
  std::function<void(std::uint32_t, std::uint64_t)> on_complete;
  std::function<void(int)> client_issue;
  std::function<bool(std::uint64_t)> dispatch;
  std::function<void(std::uint64_t)> failover;

  auto start_service = [&](std::uint32_t idx, std::uint64_t id) {
    Replica& r = replicas[idx];
    if (id >= cfg_.warmup_requests)
      res.queue_wait.record(clock.now() - arrival_ns[id]);
    const double j = jitter_rng.jitter(model.jitter_sigma);
    // slow_factor is 1.0 outside brownout windows, so the baseline service
    // times are bit-identical to a run without fault support.
    const sim::Ns parallel = model.parallel_ns * j * r.slow_factor;
    const sim::Ns par_end = clock.now() + parallel;
    sim::Ns io_start = par_end;
    sim::Ns finish;
    if (model.serialized_ns > 0) {
      // The I/O tail of the request contends on the VM's slot-limited
      // bounce-buffer pool: it grabs the earliest-free slot, starting when
      // both the parallel work and that slot are done.
      auto slot = std::min_element(r.bounce_free.begin(),
                                   r.bounce_free.end());
      io_start = std::max(par_end, *slot);
      finish = io_start + model.serialized_ns * j * r.slow_factor;
      *slot = finish;
    } else {
      finish = par_end;
    }
    r.active.push_back(id);
    if (tracer && id < samples.size())
      samples[id] = {arrival_ns[id], clock.now(), par_end, io_start,
                     finish,         idx,         true};
    events.at(finish, [&, idx, id, ep = r.epoch] {
      // A crash bumped the epoch and already failed this request over.
      if (replicas[idx].epoch != ep) return;
      on_complete(idx, id);
    });
  };

  auto try_start = [&](std::uint32_t idx) {
    while (auto id = replicas[idx].queue.start_next()) start_service(idx, *id);
  };

  dispatch = [&](std::uint64_t id) -> bool {
    core::PoolMember* m = pool.acquire();
    if (!m) {  // no warm replica at all
      ++res.rejected;
      return false;
    }
    const std::uint32_t idx = m->index;
    Replica& r = replicas[idx];
    if (chaos && (!r.reachable || r.agent_hung ||
                  r.state == Replica::State::kDown ||
                  r.state == Replica::State::kRecovering)) {
      // The balancer has not noticed the failure yet: the dispatch
      // black-holes, the client times out after detect_timeout_ns, and the
      // timeout feeds the replica's breaker before failing over.
      events.after(cfg_.detect_timeout_ns, [&, idx, id] {
        pool.release(&pool.member(idx));
        breakers[idx].record_failure(clock.now());
        if (breakers[idx].state() == fault::BreakerState::kOpen)
          pool.set_enabled(idx, false);
        failover(id);
      });
      return true;  // in flight (will time out), not rejected
    }
    if (!r.queue.admit(id)) {  // 429: replica backlog full
      pool.release(m);
      ++res.rejected;
      return false;
    }
    try_start(idx);
    return true;
  };

  on_complete = [&](std::uint32_t idx, std::uint64_t id) {
    const sim::Ns lat = clock.now() - arrival_ns[id];
    if (id >= cfg_.warmup_requests) {
      res.latency.record(lat);
      if (chaos && (crashes_outstanding > 0 || windows_active > 0))
        res.latency_fault.record(lat);
    }
    ++res.completed;
    Replica& r = replicas[idx];
    r.queue.complete();
    if (auto it = std::find(r.active.begin(), r.active.end(), id);
        it != r.active.end())
      r.active.erase(it);
    pool.release(&pool.member(idx));
    try_start(idx);
    if (closed)
      events.after(cfg_.think_ns,
                   [&, c = client_of[id]] { client_issue(c); });
  };

  // --- fault handling ------------------------------------------------------
  auto give_up = [&](std::uint64_t id) {
    ++res.failed;
    ++res.failure_codes[std::string(
        core::to_string(core::ErrorCode::kTransport))];
    if (closed)
      events.after(cfg_.think_ns,
                   [&, c = client_of[id]] { client_issue(c); });
  };

  failover = [&](std::uint64_t id) {
    ++res.failovers;
    const int attempt = ++attempt_of[id];
    // Per-request deterministic jitter stream, independent of event order.
    const fault::RetryPolicy policy(
        cfg_.retry,
        sim::hash_combine(cfg_.seed,
                          sim::hash_combine(sim::stable_hash("failover"),
                                            id)));
    if (!policy.should_retry(attempt, clock.now() - arrival_ns[id], 0)) {
      give_up(id);
      return;
    }
    ++res.retries;
    events.after(policy.backoff_ns(attempt), [&, id] {
      if (!dispatch(id) && closed)
        events.after(cfg_.think_ns,
                     [&, c = client_of[id]] { client_issue(c); });
    });
  };

  auto apply_crash = [&](std::uint32_t idx) {
    Replica& r = replicas[idx];
    if (r.state == Replica::State::kParked ||
        r.state == Replica::State::kDown ||
        r.state == Replica::State::kRecovering)
      return;  // nothing to kill, or already dead
    ++res.crashes;
    ++crashes_outstanding;
    if (r.state == Replica::State::kBooting) --booting;
    if (r.state == Replica::State::kWarm) --warm;
    r.state = Replica::State::kDown;
    r.down_pending = true;
    ++r.epoch;  // orphan this incarnation's scheduled completions
    r.reachable = false;
    rec_pending[idx] = RecoverySample{};
    rec_pending[idx].replica = idx;
    rec_pending[idx].crash_ns = clock.now();
    std::fill(r.bounce_free.begin(), r.bounce_free.end(), 0.0);
    // Everything on the replica dies with it: queued requests and the ones
    // mid-service. Their clients notice after the detection timeout and
    // fail over. The pool keeps routing here until the breaker opens —
    // failure detection is observational, not oracle knowledge.
    std::vector<std::uint64_t> victims = r.queue.evict_all();
    victims.insert(victims.end(), r.active.begin(), r.active.end());
    r.active.clear();
    for (std::size_t k = 0; k < victims.size(); ++k)
      pool.release(&pool.member(idx));
    for (const std::uint64_t id : victims)
      events.after(cfg_.detect_timeout_ns, [&, id] { failover(id); });
  };

  auto start_recovery = [&](std::uint32_t idx) {
    Replica& r = replicas[idx];
    if (r.state != Replica::State::kDown) return;
    r.state = Replica::State::kRecovering;
    RecoverySample& rs = rec_pending[idx];
    rs.boot_start_ns = clock.now();
    rs.boot_end_ns = clock.now() + recovery.boot_ns;
    // Re-attestation (secure fleets only) stalls behind any attestation-
    // service outage window — normal replicas skip the step entirely,
    // which is exactly the availability asymmetry the chaos bench reports.
    sim::Ns attest_start = rs.boot_end_ns;
    if (recovery.attest_ns > 0) {
      for (const auto& [s, e] : outages)
        if (attest_start >= s && attest_start < e) attest_start = e;
    }
    rs.attest_start_ns = attest_start;
    rs.attest_end_ns =
        attest_start + (recovery.attest_ns > 0 ? recovery.attest_ns : 0.0);
    events.at(rs.attest_end_ns, [&, idx] {
      Replica& r2 = replicas[idx];
      if (r2.state != Replica::State::kRecovering) return;
      r2.state = Replica::State::kWarm;
      r2.reachable = true;
      r2.agent_hung = false;
      r2.slow_factor = 1.0;
      // Still pool-disabled: traffic is readmitted only once a half-open
      // health probe closes the breaker (that close stamps recovered_ns).
    });
  };

  std::function<void()> probe = [&] {
    const sim::Ns now = clock.now();
    for (std::uint32_t i = 0; i < replicas.size(); ++i) {
      Replica& r = replicas[i];
      if (r.state == Replica::State::kParked ||
          r.state == Replica::State::kBooting)
        continue;
      fault::CircuitBreaker& br = breakers[i];
      const bool healthy = r.state == Replica::State::kWarm && r.reachable &&
                           !r.agent_hung;
      if (br.state() == fault::BreakerState::kClosed) {
        if (healthy) {
          br.record_success(now);
        } else {
          br.record_failure(now);
          if (br.state() == fault::BreakerState::kOpen)
            pool.set_enabled(i, false);
        }
      } else if (br.allow(now)) {  // open past cooldown, or half-open idle
        if (healthy) {
          br.record_success(now);
          if (br.state() == fault::BreakerState::kClosed &&
              r.state == Replica::State::kWarm) {
            pool.set_enabled(i, true);
            if (r.down_pending) {
              r.down_pending = false;
              --crashes_outstanding;
              ++warm;
              res.peak_warm = std::max(res.peak_warm, warm);
              rec_pending[i].recovered_ns = now;
              res.recoveries.push_back(rec_pending[i]);
            }
          }
        } else {
          br.record_failure(now);
        }
      }
      if (r.state == Replica::State::kDown &&
          br.state() == fault::BreakerState::kOpen)
        start_recovery(i);
    }
    bool breakers_open = false;
    for (const fault::CircuitBreaker& b : breakers)
      if (b.state() != fault::BreakerState::kClosed) breakers_open = true;
    std::uint64_t busy = 0;
    for (const Replica& r : replicas) busy += r.queue.backlog();
    if (issued < cfg_.requests || busy > 0 || crashes_outstanding > 0 ||
        windows_active > 0 || breakers_open)
      events.after(cfg_.probe_interval_ns, probe);
  };

  // --- load generation -----------------------------------------------------
  std::function<void()> on_open_arrival = [&] {
    const std::uint64_t id = issued++;
    arrival_ns.push_back(clock.now());
    attempt_of.push_back(0);
    ++res.offered;
    dispatch(id);
    if (issued < cfg_.requests) events.after(arrivals.next_gap(),
                                             on_open_arrival);
  };

  client_issue = [&](int c) {
    if (issued >= cfg_.requests) return;
    const std::uint64_t id = issued++;
    arrival_ns.push_back(clock.now());
    attempt_of.push_back(0);
    client_of.push_back(c);
    ++res.offered;
    if (!dispatch(id))  // rejected: the client backs off one think time
      events.after(cfg_.think_ns, [&, c] { client_issue(c); });
  };

  if (closed) {
    client_of.reserve(arrival_ns.capacity());
    for (int c = 0; c < cfg_.closed_loop_clients; ++c)
      events.after(static_cast<double>(c) * sim::kUs,
                   [&, c] { client_issue(c); });
  } else if (cfg_.requests > 0) {
    events.after(arrivals.next_gap(), on_open_arrival);
  }

  // --- autoscaler ticks ----------------------------------------------------
  std::uint64_t last_rejected = 0;
  std::function<void()> tick = [&] {
    std::uint64_t in_service = 0, queued = 0;
    for (const Replica& r : replicas) {
      in_service += static_cast<std::uint64_t>(r.queue.in_service());
      queued += r.queue.queued();
    }
    const std::uint64_t rejected_delta = res.rejected - last_rejected;
    last_rejected = res.rejected;
    const int delta = scaler.evaluate(warm, booting, in_service, queued,
                                      cfg_.queue.concurrency, clock.now(),
                                      rejected_delta);
    if (tracer && delta != 0)
      decisions.push_back(
          {clock.now(), delta, warm, booting, in_service, queued});
    if (delta > 0) {
      int to_boot = delta;
      for (std::uint32_t i = 0;
           i < replicas.size() && to_boot > 0; ++i) {
        if (replicas[i].state != Replica::State::kParked) continue;
        replicas[i].state = Replica::State::kBooting;
        ++booting;
        --to_boot;
        const sim::Ns boot_start = clock.now();
        events.after(scfg.cold_start_ns, [&, i, boot_start] {
          if (replicas[i].state != Replica::State::kBooting) return;
          replicas[i].state = Replica::State::kWarm;
          pool.set_enabled(i, true);
          --booting;
          ++warm;
          res.peak_warm = std::max(res.peak_warm, warm);
          if (tracer) boots.push_back({i, boot_start, clock.now()});
        });
      }
    } else if (delta < 0) {
      // Park the highest-index warm replica that is fully idle.
      for (std::uint32_t i = static_cast<std::uint32_t>(replicas.size());
           i-- > 0;) {
        if (replicas[i].state != Replica::State::kWarm) continue;
        if (!replicas[i].queue.idle() || pool.member(i).in_flight != 0)
          continue;
        // Never park a replica mid-recovery: it looks idle only because
        // its breaker still holds traffic off it.
        if (chaos && (replicas[i].down_pending ||
                      breakers[i].state() != fault::BreakerState::kClosed))
          continue;
        replicas[i].state = Replica::State::kParked;
        pool.set_enabled(i, false);
        --warm;
        break;
      }
    }
    const bool work_left =
        issued < cfg_.requests || in_service + queued > 0 || booting > 0 ||
        (chaos && (crashes_outstanding > 0 || windows_active > 0));
    if (work_left) events.after(scfg.tick_ns, tick);
  };
  events.after(scfg.tick_ns, tick);

  // --- fault replay --------------------------------------------------------
  if (chaos) {
    events.after(cfg_.probe_interval_ns, probe);
    for (const fault::FaultEvent& e : cfg_.faults.events()) {
      const std::uint32_t idx = e.replica;
      switch (e.kind) {
        case fault::FaultKind::kVmCrash:
          if (idx < replicas.size())
            events.at(e.at_ns, [&, idx] { apply_crash(idx); });
          break;
        case fault::FaultKind::kAgentHang:
        case fault::FaultKind::kPartition:
          if (idx < replicas.size()) {
            const bool hang = e.kind == fault::FaultKind::kAgentHang;
            events.at(e.at_ns, [&, idx, hang] {
              ++windows_active;
              if (hang)
                replicas[idx].agent_hung = true;
              else
                replicas[idx].reachable = false;
            });
            events.at(e.at_ns + e.duration_ns, [&, idx, hang] {
              --windows_active;
              // If a crash superseded the window, recovery owns the flags.
              if (replicas[idx].state == Replica::State::kDown ||
                  replicas[idx].state == Replica::State::kRecovering)
                return;
              if (hang)
                replicas[idx].agent_hung = false;
              else
                replicas[idx].reachable = true;
            });
          }
          break;
        case fault::FaultKind::kBrownout:
          if (idx < replicas.size()) {
            events.at(e.at_ns, [&, idx, s = e.severity] {
              ++windows_active;
              replicas[idx].slow_factor = s;
            });
            events.at(e.at_ns + e.duration_ns, [&, idx] {
              --windows_active;
              if (replicas[idx].state == Replica::State::kDown ||
                  replicas[idx].state == Replica::State::kRecovering)
                return;
              replicas[idx].slow_factor = 1.0;
            });
          }
          break;
        case fault::FaultKind::kAttestOutage:
          // Consulted via `outages` when scheduling re-attestation; the
          // window only needs to keep the probe/tick chains alive.
          events.at(e.at_ns, [&] { ++windows_active; });
          events.at(e.at_ns + e.duration_ns, [&] { --windows_active; });
          break;
      }
    }
  }

  events.run();

  res.makespan_ns = clock.now();
  res.scaler_trace = scaler.trace();

  if (tracer) {
    const std::string run_name =
        cfg_.platform + "/" + cfg_.function +
        (cfg_.secure ? "/secure" : "/normal");

    // Tail traces: the trace_tail slowest steady-state requests, each a
    // well-nested tree of queue-wait / service / bounce-wait / bounce.
    std::vector<std::uint64_t> ids;
    for (std::uint64_t id = cfg_.warmup_requests; id < samples.size(); ++id)
      if (samples[id].done) ids.push_back(id);
    std::sort(ids.begin(), ids.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                const sim::Ns la = samples[a].finish - samples[a].arrival;
                const sim::Ns lb = samples[b].finish - samples[b].arrival;
                return la != lb ? la > lb : a < b;
              });
    const auto k = std::min<std::size_t>(
        ids.size(), static_cast<std::size_t>(std::max(cfg_.trace_tail, 0)));
    for (std::size_t i = 0; i < k; ++i) {
      const TailSample& s = samples[ids[i]];
      obs::Trace& tr = tracer->start_trace(
          run_name + "/tail#" + std::to_string(ids[i]));
      const std::uint32_t root = tr.add_span(
          obs::Category::kInvoke, "request", s.arrival, s.finish);
      tr.set_attr(root, "replica", "replica-" + std::to_string(s.replica));
      tr.set_attr(root, "latency_ns", fmt_ns(s.finish - s.arrival));
      if (s.start > s.arrival)
        tr.add_span(obs::Category::kQueueWait, "queue.wait", s.arrival,
                    s.start, root);
      tr.add_span(obs::Category::kService, "service.parallel", s.start,
                  s.par_end, root);
      if (s.io_start > s.par_end)
        tr.add_span(obs::Category::kBounceWait, "bounce.wait", s.par_end,
                    s.io_start, root);
      if (s.finish > s.io_start)
        tr.add_span(obs::Category::kBounce, "bounce.io", s.io_start,
                    s.finish, root);
    }

    // Fleet trace: cold-start spans plus every autoscaler decision.
    obs::Trace& fleet = tracer->start_trace(run_name + "/fleet");
    for (const BootEvent& b : boots) {
      const std::uint32_t sp = fleet.add_span(
          obs::Category::kColdStart, "replica.boot", b.start, b.end);
      fleet.set_attr(sp, "replica", "replica-" + std::to_string(b.replica));
    }
    for (const ScalerDecision& d : decisions)
      fleet.instant_at("scaler.decision", d.t,
                       {{"delta", std::to_string(d.delta)},
                        {"warm", std::to_string(d.warm)},
                        {"booting", std::to_string(d.booting)},
                        {"in_service", std::to_string(d.in_service)},
                        {"queued", std::to_string(d.queued)}});

    if (chaos) {
      // Every injected fault as a span; crashes stretch to the matching
      // recovery so the outage is visible at a glance.
      for (const fault::FaultEvent& e : cfg_.faults.events()) {
        sim::Ns end = e.at_ns + e.duration_ns;
        if (e.kind == fault::FaultKind::kVmCrash) {
          end = e.at_ns;
          for (const RecoverySample& rs : res.recoveries)
            if (rs.replica == e.replica && rs.crash_ns == e.at_ns) {
              end = rs.recovered_ns;
              break;
            }
        }
        const std::uint32_t sp = fleet.add_span(
            obs::Category::kFault,
            "fault." + std::string(fault::to_string(e.kind)), e.at_ns, end);
        fleet.set_attr(sp, "replica",
                       "replica-" + std::to_string(e.replica));
      }
      // Recovery spans with boot + re-attest children: the boot/attest
      // sub-intervals are what attribute the secure-vs-normal TTR gap.
      for (const RecoverySample& rs : res.recoveries) {
        const std::uint32_t sp =
            fleet.add_span(obs::Category::kRecovery, "replica.recovery",
                           rs.crash_ns, rs.recovered_ns);
        fleet.set_attr(sp, "replica",
                       "replica-" + std::to_string(rs.replica));
        fleet.set_attr(sp, "ttr_ns", fmt_ns(rs.ttr_ns()));
        fleet.add_span(obs::Category::kColdStart, "recovery.boot",
                       rs.boot_start_ns, rs.boot_end_ns, sp);
        if (rs.attest_end_ns > rs.attest_start_ns)
          fleet.add_span(obs::Category::kAttest, "recovery.attest",
                         rs.attest_start_ns, rs.attest_end_ns, sp);
      }
    }

    // Run aggregates into the central registry.
    obs::Registry& reg = tracer->registry();
    reg.counter("cluster.offered") += res.offered;
    reg.counter("cluster.completed") += res.completed;
    reg.counter("cluster.rejected") += res.rejected;
    reg.gauge("cluster.peak_warm") = res.peak_warm;
    reg.histogram("cluster.latency_ns").merge(res.latency);
    reg.histogram("cluster.queue_wait_ns").merge(res.queue_wait);
    if (chaos) {
      reg.counter("cluster.failed") += res.failed;
      reg.counter("cluster.retries") += res.retries;
      reg.counter("cluster.failovers") += res.failovers;
      reg.counter("cluster.crashes") += res.crashes;
      reg.histogram("cluster.latency_fault_ns").merge(res.latency_fault);
    }
  }
  return res;
}

}  // namespace confbench::sched

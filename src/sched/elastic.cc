#include "sched/elastic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace confbench::sched {

ElasticController::ElasticController(ElasticConfig cfg) : cfg_(cfg) {
  if (cfg_.tick_ns <= 0)
    throw std::invalid_argument("ElasticConfig: tick_ns must be > 0");
  if (cfg_.target_utilization <= 0 || cfg_.target_utilization > 1.0)
    throw std::invalid_argument(
        "ElasticConfig: target_utilization must be in (0, 1]");
  if (cfg_.level_alpha <= 0 || cfg_.level_alpha > 1.0 ||
      cfg_.trend_beta < 0 || cfg_.trend_beta > 1.0)
    throw std::invalid_argument(
        "ElasticConfig: Holt smoothing factors out of range");
  if (cfg_.down_threshold < 0 || cfg_.down_threshold >= 1.0)
    throw std::invalid_argument(
        "ElasticConfig: down_threshold must be in [0, 1) — the hysteresis "
        "band needs the scale-in point strictly below the scale-out point");
  if (cfg_.join_max_attempts < 1)
    throw std::invalid_argument(
        "ElasticConfig: join_max_attempts must be >= 1");
  if (cfg_.join_backoff_mult < 1.0)
    throw std::invalid_argument(
        "ElasticConfig: join_backoff_mult must be >= 1");
}

int ElasticController::governor_admit(sim::Ns now, int want) {
  if (cfg_.max_events_per_window <= 0) return want;  // governor off
  while (!churn_events_.empty() &&
         churn_events_.front() <= now - cfg_.churn_window_ns)
    churn_events_.pop_front();
  const int room = cfg_.max_events_per_window -
                   static_cast<int>(churn_events_.size());
  const int granted = std::clamp(want, 0, std::max(0, room));
  for (int i = 0; i < granted; ++i) churn_events_.push_back(now);
  return granted;
}

ElasticDecision ElasticController::evaluate(const ElasticSignals& sig) {
  const double tick_s = cfg_.tick_ns / sim::kSec;
  const double rate = static_cast<double>(sig.arrivals_delta) / tick_s;

  // Holt linear exponential smoothing on the per-tick arrival rate. The
  // trend is per-tick; the forecast extrapolates lead_time_ns ahead so a
  // ramp detected now orders the capacity the *peak* will need, one
  // cold-start-plus-re-attest early.
  if (!seen_) {
    level_ = rate;
    trend_ = 0;
    seen_ = true;
  } else {
    const double prev_level = level_;
    level_ = cfg_.level_alpha * rate +
             (1.0 - cfg_.level_alpha) * (level_ + trend_);
    trend_ = cfg_.trend_beta * (level_ - prev_level) +
             (1.0 - cfg_.trend_beta) * trend_;
  }
  const double horizon_ticks = cfg_.lead_time_ns / cfg_.tick_ns;
  const double forecast = std::max(0.0, level_ + trend_ * horizon_ticks);
  const double demand = cfg_.predictive ? std::max(rate, forecast) : rate;

  const double slot_rps =
      std::max(sig.per_replica_rps * cfg_.target_utilization, 1e-9);
  int needed = static_cast<int>(std::ceil(demand / slot_rps));
  const int have = sig.warm + sig.pending;
  // Rejection kick: the fabric turning requests away is ground truth that
  // capacity is short, whatever the rate model believes. A zero-warm fleet
  // emits *only* this signal.
  if (sig.rejected_delta > 0) needed = std::max(needed, have + 1);

  ElasticDecision d;
  ElasticSample sample;
  sample.t = sig.now;
  sample.rate_rps = rate;
  sample.level_rps = level_;
  sample.trend_rps = trend_;
  sample.demand_rps = demand;
  sample.rejected_delta = sig.rejected_delta;
  sample.queued = sig.queued;
  sample.warm = sig.warm;
  sample.pending = sig.pending;
  sample.needed = needed;

  if (needed > have) {
    low_ticks_ = 0;
    int want = needed - have;
    const int budget = cfg_.max_extra_replicas - ordered_replicas_;
    if (want > budget) want = budget;
    if (want > 0 && up_ever_ &&
        sig.now - last_up_ns_ < cfg_.up_cooldown_ns) {
      sample.suppressed_cooldown += static_cast<std::uint64_t>(want);
      want = 0;
    }
    if (want > 0) {
      // Grow the admission plane with the fleet: one shard join per
      // replicas_per_shard joiners ordered (cumulative), shard-budget
      // permitting. Shards and replicas share the churn governor — both
      // are ring membership events.
      int want_shards = 0;
      if (cfg_.replicas_per_shard > 0) {
        const int target_shards =
            std::min(cfg_.max_extra_shards,
                     (ordered_replicas_ + want) / cfg_.replicas_per_shard);
        want_shards = std::max(0, target_shards - ordered_shards_);
      }
      const int granted = governor_admit(sig.now, want + want_shards);
      sample.suppressed_governor +=
          static_cast<std::uint64_t>(want + want_shards - granted);
      d.add_replicas = std::min(want, granted);
      d.add_shards = granted - d.add_replicas;
      if (granted > 0) {
        ordered_replicas_ += d.add_replicas;
        live_extra_replicas_ += d.add_replicas;
        ordered_shards_ += d.add_shards;
        live_extra_shards_ += d.add_shards;
        last_up_ns_ = sig.now;
        up_ever_ = true;
      }
    }
  } else if (static_cast<double>(needed) <
                 static_cast<double>(sig.warm) * cfg_.down_threshold &&
             sig.queued == 0 && sig.rejected_delta == 0 &&
             sig.pending == 0 &&
             (live_extra_replicas_ > 0 || live_extra_shards_ > 0)) {
    if (++low_ticks_ >= cfg_.down_patience) {
      const bool cooled =
          !down_ever_ || sig.now - last_down_ns_ >= cfg_.down_cooldown_ns;
      if (!cooled) {
        ++sample.suppressed_cooldown;
      } else if (governor_admit(sig.now, 1) < 1) {
        ++sample.suppressed_governor;
      } else {
        // One step per decision, replicas before shards: the admission
        // plane shrinks only after every joiner it was grown for is gone.
        if (live_extra_replicas_ > 0) {
          d.remove_replicas = 1;
          --live_extra_replicas_;
        } else {
          d.remove_shards = 1;
          --live_extra_shards_;
        }
        last_down_ns_ = sig.now;
        down_ever_ = true;
        low_ticks_ = 0;
      }
    }
  } else {
    low_ticks_ = 0;  // the lull was interrupted: patience restarts
  }

  sample.decision = d;
  trace_.push_back(sample);
  return d;
}

void ElasticController::on_join_abandoned() {
  if (live_extra_replicas_ > 0) --live_extra_replicas_;
}

void ElasticController::on_scale_in_aborted() { ++live_extra_replicas_; }

void ElasticController::on_shard_retire_aborted() { ++live_extra_shards_; }

}  // namespace confbench::sched

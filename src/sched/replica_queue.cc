#include "sched/replica_queue.h"

#include <algorithm>

namespace confbench::sched {

bool ReplicaQueue::admit(std::uint64_t request_id) {
  const std::uint64_t cap = static_cast<std::uint64_t>(cfg_.concurrency) +
                            static_cast<std::uint64_t>(cfg_.queue_depth);
  if (backlog() >= cap) {
    ++rejected_;
    return false;
  }
  pending_.push_back(request_id);
  peak_queued_ = std::max(peak_queued_, pending_.size());
  ++admitted_;
  return true;
}

std::optional<std::uint64_t> ReplicaQueue::start_next() {
  if (pending_.empty() || in_service_ >= cfg_.concurrency)
    return std::nullopt;
  const std::uint64_t id = pending_.front();
  pending_.pop_front();
  ++in_service_;
  return id;
}

void ReplicaQueue::complete() {
  if (in_service_ > 0) --in_service_;
}

bool ReplicaQueue::cancel(std::uint64_t request_id) {
  const auto it = std::find(pending_.begin(), pending_.end(), request_id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  return true;
}

std::vector<std::uint64_t> ReplicaQueue::evict_all() {
  std::vector<std::uint64_t> out(pending_.begin(), pending_.end());
  pending_.clear();
  in_service_ = 0;
  return out;
}

}  // namespace confbench::sched

#include "sched/replica_queue.h"

#include <algorithm>

namespace confbench::sched {

void ReplicaQueue::grow() {
  const std::size_t cap = ring_.empty() ? 8 : ring_.size() * 2;
  std::vector<Pending> next(cap);
  for (std::uint64_t p = head_; p < tail_; ++p)
    next[p & (cap - 1)] = ring_[p & (ring_.size() - 1)];
  ring_ = std::move(next);
}

ReplicaQueue::Ticket ReplicaQueue::admit(std::uint64_t request_id) {
  const std::uint64_t cap = static_cast<std::uint64_t>(cfg_.concurrency) +
                            static_cast<std::uint64_t>(cfg_.queue_depth);
  if (backlog() >= cap) {
    ++rejected_;
    return Ticket{};
  }
  if (ring_.empty() || tail_ - head_ == ring_.size()) grow();
  ring_[tail_ & (ring_.size() - 1)] = Pending{request_id, true};
  const Ticket t{tail_++};
  ++live_queued_;
  peak_queued_ = std::max(peak_queued_, live_queued_);
  ++admitted_;
  return t;
}

std::optional<std::uint64_t> ReplicaQueue::start_next() {
  if (live_queued_ == 0 || in_service_ >= cfg_.concurrency)
    return std::nullopt;
  // Cancelled entries park at the front until the FIFO head walks over
  // them — each is skipped exactly once, so the cost stays O(1) amortized.
  while (head_ < tail_ && !ring_[head_ & (ring_.size() - 1)].live) ++head_;
  const std::uint64_t id = ring_[head_ & (ring_.size() - 1)].id;
  ring_[head_ & (ring_.size() - 1)].live = false;
  ++head_;
  --live_queued_;
  ++in_service_;
  return id;
}

void ReplicaQueue::complete() {
  if (in_service_ > 0) --in_service_;
}

bool ReplicaQueue::cancel(Ticket t) {
  if (!t.valid() || t.pos < head_ || t.pos >= tail_) return false;
  Pending& p = ring_[t.pos & (ring_.size() - 1)];
  if (!p.live) return false;
  p.live = false;
  --live_queued_;
  return true;
}

std::vector<std::uint64_t> ReplicaQueue::evict_all() {
  std::vector<std::uint64_t> out;
  out.reserve(live_queued_);
  for (std::uint64_t p = head_; p < tail_; ++p) {
    Pending& e = ring_[p & (ring_.size() - 1)];
    if (e.live) out.push_back(e.id);
    e.live = false;
  }
  head_ = tail_;
  live_queued_ = 0;
  in_service_ = 0;
  return out;
}

}  // namespace confbench::sched

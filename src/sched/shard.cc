#include "sched/shard.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/gateway.h"
#include "core/pool.h"
#include "fault/linkfault.h"
#include "metrics/json.h"
#include "net/network.h"
#include "sched/event_queue.h"
#include "sim/clock.h"
#include "sim/rng.h"

namespace confbench::sched {

// --- HashRing ----------------------------------------------------------------

std::uint64_t HashRing::point_value(const std::string& name, int v) const {
  const std::uint64_t raw =
      sim::stable_hash(name + "#" + std::to_string(v));
  // The splitmix finalizer spreads FNV's clustered values uniformly around
  // the ring, so every node's keyspace share concentrates near 1/N and the
  // churn bound (moved keys <= ~1.5/N) actually holds. Raw FNV is the
  // legacy placement every pre-churn experiment routes by.
  return mix_points_ ? sim::hash_combine(raw, 0) : raw;
}

HashRing::HashRing(const std::vector<std::string>& nodes, int vnodes,
                   bool mix_points)
    : vnodes_(vnodes),
      mix_points_(mix_points),
      live_count_(nodes.size()),
      names_(nodes) {
  if (nodes.empty())
    throw std::invalid_argument("HashRing: at least one node required");
  if (vnodes <= 0) throw std::invalid_argument("HashRing: vnodes must be > 0");
  live_.assign(names_.size(), true);
  points_.reserve(names_.size() * static_cast<std::size_t>(vnodes));
  for (std::uint32_t n = 0; n < names_.size(); ++n)
    for (int v = 0; v < vnodes; ++v)
      points_.emplace_back(point_value(names_[n], v), n);
  // Sorting the (hash, node) pairs makes a hash collision between two
  // nodes' points resolve by node index — identical on every platform.
  std::sort(points_.begin(), points_.end());
}

std::uint32_t HashRing::owner(std::uint64_t key_hash) const {
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(key_hash, std::uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<std::uint32_t> HashRing::chain(std::uint64_t key_hash) const {
  std::vector<std::uint32_t> out;
  out.reserve(live_count_);
  std::vector<bool> seen(names_.size(), false);
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(key_hash, std::uint32_t{0}));
  for (std::size_t step = 0;
       step < points_.size() && out.size() < live_count_; ++step) {
    if (it == points_.end()) it = points_.begin();
    if (!seen[it->second]) {
      seen[it->second] = true;
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

void HashRing::insert_points(std::uint32_t idx) {
  // Sorted insertion, one point at a time: the surrounding points never
  // move, so only the keys hashing into the new point's arc change owner.
  for (int v = 0; v < vnodes_; ++v) {
    const std::pair<std::uint64_t, std::uint32_t> p{
        point_value(names_[idx], v), idx};
    points_.insert(std::upper_bound(points_.begin(), points_.end(), p), p);
  }
}

std::uint32_t HashRing::add_node(const std::string& name) {
  for (std::uint32_t i = 0; i < names_.size(); ++i)
    if (live_[i] && names_[i] == name)
      throw std::invalid_argument("HashRing: duplicate live node name");
  const auto idx = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  live_.push_back(true);
  ++live_count_;
  insert_points(idx);
  return idx;
}

void HashRing::remove_node(std::uint32_t idx) {
  if (idx >= names_.size() || !live_[idx])
    throw std::invalid_argument("HashRing: remove of dead or unknown node");
  if (live_count_ <= 1)
    throw std::invalid_argument("HashRing: cannot remove the last live node");
  live_[idx] = false;
  --live_count_;
  // Erase by node *index*, never by re-hashing the name: a name collision
  // (or a dead slot sharing a name with a live one) can therefore never
  // orphan another node's vnodes on the ring.
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [idx](const std::pair<std::uint64_t,
                                                     std::uint32_t>& p) {
                                 return p.second == idx;
                               }),
                points_.end());
}

bool HashRing::validate(bool repair) {
  bool ok = std::is_sorted(points_.begin(), points_.end()) &&
            points_.size() ==
                live_count_ * static_cast<std::size_t>(vnodes_);
  if (ok) {
    std::vector<int> counts(names_.size(), 0);
    for (const auto& [hash, n] : points_) {
      if (n >= names_.size() || !live_[n]) {
        ok = false;
        break;
      }
      ++counts[n];
    }
    if (ok)
      for (std::uint32_t i = 0; i < names_.size(); ++i)
        if (counts[i] != (live_[i] ? vnodes_ : 0)) {
          ok = false;
          break;
        }
  }
  if (!ok && repair) {
    points_.clear();
    points_.reserve(live_count_ * static_cast<std::size_t>(vnodes_));
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(names_.size());
         ++i)
      if (live_[i]) insert_points(i);
  }
  return ok;
}

// --- ShardedFrontend ---------------------------------------------------------

namespace {

std::vector<std::string> make_shard_names(const ShardConfig& cfg,
                                          int replicas) {
  if (cfg.shards <= 0)
    throw std::invalid_argument("ShardedFrontend: shards must be > 0");
  if (replicas <= 0)
    throw std::invalid_argument("ShardedFrontend: replicas must be > 0");
  if (cfg.load_factor < 1.0)
    throw std::invalid_argument("ShardedFrontend: load_factor must be >= 1");
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(cfg.shards));
  for (int s = 0; s < cfg.shards; ++s)
    names.push_back(ShardedFrontend::shard_host(s));
  return names;
}

}  // namespace

std::string ShardedFrontend::shard_host(int s) {
  return "shard-" + std::to_string(s);
}

std::string ShardedFrontend::replica_host(std::uint32_t r) {
  return "replica-" + std::to_string(r);
}

ShardedFrontend::ShardedFrontend(const ShardConfig& cfg, int replicas)
    : load_factor_(cfg.load_factor),
      live_replicas_(replicas),
      ring_(make_shard_names(cfg, replicas), cfg.vnodes,
            cfg.ring_mix_points) {
  slices_.resize(static_cast<std::size_t>(cfg.shards));
  owner_.assign(static_cast<std::size_t>(replicas), SliceMove::kUnowned);
  replica_live_.assign(static_cast<std::size_t>(replicas), true);
  rebuild_slices(nullptr);
}

void ShardedFrontend::rebuild_slices(std::vector<SliceMove>* moves) {
  std::vector<std::vector<std::uint32_t>> next(slices_.size());
  std::vector<std::uint32_t> next_owner(owner_.size(), SliceMove::kUnowned);
  // Bounded-load cap: ceil(mean live slice size * load_factor). The sum of
  // caps is >= live replicas, so the spill walk below always terminates on
  // a shard with room.
  const auto cap = static_cast<std::size_t>(std::ceil(
      static_cast<double>(live_replicas_) /
      static_cast<double>(ring_.live_nodes()) * load_factor_));
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(owner_.size());
       ++r) {
    if (!replica_live_[r]) continue;
    const auto ch = ring_.chain(sim::stable_hash(replica_host(r)));
    std::uint32_t s = ch.front();
    for (const std::uint32_t cand : ch)
      if (next[cand].size() < cap) {
        s = cand;
        break;
      }
    next[s].push_back(r);
    next_owner[r] = s;
  }
  if (moves)
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(owner_.size());
         ++r)
      if (owner_[r] != next_owner[r])
        moves->push_back({.replica = r, .from = owner_[r],
                          .to = next_owner[r]});
  slices_ = std::move(next);
  owner_ = std::move(next_owner);
}

int ShardedFrontend::add_shard(std::vector<SliceMove>* moves) {
  const std::uint32_t s =
      ring_.add_node(shard_host(static_cast<int>(ring_.nodes())));
  slices_.emplace_back();
  rebuild_slices(moves);
  return static_cast<int>(s);
}

std::vector<ShardedFrontend::SliceMove> ShardedFrontend::remove_shard(
    std::uint32_t s) {
  std::vector<SliceMove> moves;
  ring_.remove_node(s);  // throws on dead / unknown / last live
  rebuild_slices(&moves);
  return moves;
}

std::uint32_t ShardedFrontend::add_replica(std::vector<SliceMove>* moves) {
  const auto r = static_cast<std::uint32_t>(owner_.size());
  owner_.push_back(SliceMove::kUnowned);
  replica_live_.push_back(true);
  ++live_replicas_;
  rebuild_slices(moves);
  return r;
}

std::vector<ShardedFrontend::SliceMove> ShardedFrontend::remove_replica(
    std::uint32_t r) {
  if (r >= replica_live_.size() || !replica_live_[r])
    throw std::invalid_argument(
        "ShardedFrontend: remove of dead or unknown replica");
  if (live_replicas_ <= 1)
    throw std::invalid_argument(
        "ShardedFrontend: cannot remove the last live replica");
  replica_live_[r] = false;
  --live_replicas_;
  std::vector<SliceMove> moves;
  rebuild_slices(&moves);
  return moves;
}

std::vector<std::uint32_t> ShardedFrontend::route(std::uint64_t id) const {
  // SplitMix-style dispersion of the sequential ids, so consecutive
  // requests spread over the whole ring instead of marching around it.
  return ring_.chain(
      sim::hash_combine(sim::stable_hash("shard-route"), id));
}

// --- ShardedResult -----------------------------------------------------------

double ShardedResult::throughput_rps() const {
  if (makespan_ns <= 0) return 0;
  return static_cast<double>(completed) / (makespan_ns / sim::kSec);
}

std::string ShardedResult::to_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("platform").value(cfg.platform);
  w.key("secure").value(cfg.secure);
  w.key("rate_rps").value(cfg.rate_rps);
  w.key("seed").value(cfg.seed);
  w.key("shards").value(cfg.shard.shards);
  w.key("replicas").value(cfg.replicas);
  w.key("cross_admit_ns").value(cfg.shard.cross_admit_ns);
  w.key("offered").value(offered);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("failed").value(failed);
  w.key("retries").value(retries);
  w.key("failovers").value(failovers);
  w.key("cross_failovers").value(cross_failovers);
  w.key("shed").value(shed);
  w.key("hedges").value(hedges);
  w.key("hedge_wins").value(hedge_wins);
  w.key("responses_lost").value(responses_lost);
  w.key("availability").value(availability());
  w.key("throughput_rps").value(throughput_rps());
  w.key("makespan_ns").value(makespan_ns);
  w.key("latency_ns");
  w.begin_object();
  w.key("p50").value(latency.p50());
  w.key("p95").value(latency.p95());
  w.key("p99").value(latency.p99());
  w.key("mean").value(latency.mean());
  w.end_object();
  w.key("latency_intra_p99_ns").value(latency_intra.p99());
  w.key("latency_cross_p99_ns").value(latency_cross.p99());
  w.key("latency_fault_p99_ns").value(latency_fault.p99());
  w.key("attest_svc");
  w.begin_object();
  w.key("enabled").value(cfg.attest_svc.enabled);
  w.key("full").value(attest.full);
  w.key("evtpm").value(attest.evtpm);
  w.key("batches").value(attest.batches);
  w.key("batched").value(attest.batched);
  w.key("fetches").value(attest.fetches);
  w.key("fetch_failures").value(attest.fetch_failures);
  w.key("cache_hits").value(attest.cache_hits);
  w.key("cache_misses").value(attest.cache_misses);
  w.key("cache_stale").value(attest.cache_stale);
  w.key("ticket_mints").value(attest.ticket_mints);
  w.key("ticket_resumes").value(attest.ticket_resumes);
  w.key("ticket_expired").value(attest.ticket_expired);
  w.key("ticket_invalidated").value(attest.ticket_invalidated);
  w.key("deadline_giveups").value(attest.deadline_giveups);
  w.key("queue_rejects").value(attest.queue_rejects);
  w.key("revocations").value(attest.revocations);
  w.key("tcb_recoveries").value(attest.tcb_recoveries);
  w.end_object();
  w.key("elastic");
  w.begin_object();
  w.key("enabled").value(cfg.elastic.enabled);
  w.key("predictive").value(cfg.elastic.predictive);
  w.key("ticks").value(elastic.ticks);
  w.key("replica_orders").value(elastic.replica_orders);
  w.key("shard_orders").value(elastic.shard_orders);
  w.key("joins_completed").value(elastic.joins_completed);
  w.key("shard_joins_completed").value(elastic.shard_joins_completed);
  w.key("join_crashes").value(elastic.join_crashes);
  w.key("join_attest_failures").value(elastic.join_attest_failures);
  w.key("join_retries").value(elastic.join_retries);
  w.key("joins_abandoned").value(elastic.joins_abandoned);
  w.key("scale_ins").value(elastic.scale_ins);
  w.key("scale_in_aborts").value(elastic.scale_in_aborts);
  w.key("shard_retires").value(elastic.shard_retires);
  w.key("suppressed_cooldown").value(elastic.suppressed_cooldown);
  w.key("suppressed_governor").value(elastic.suppressed_governor);
  w.key("warm_replica_seconds").value(elastic.warm_replica_seconds);
  w.key("last_reject_ns").value(last_reject_ns);
  w.key("latency_window_p99_ns").value(latency_window.p99());
  w.end_object();
  w.key("hedging");
  w.begin_object();
  w.key("cross_shard").value(cfg.hedge.cross_shard);
  w.key("fired").value(hedging.fired);
  w.key("cross").value(hedging.cross);
  w.key("intra").value(hedging.intra);
  w.key("wins").value(hedging.wins);
  w.key("cross_wins").value(hedging.cross_wins);
  w.key("cancelled_queue").value(hedging.cancelled_queue);
  w.key("cancelled_inflight").value(hedging.cancelled_inflight);
  w.key("declined_budget").value(hedging.declined_budget);
  w.key("declined_breaker").value(hedging.declined_breaker);
  w.key("declined_degraded").value(hedging.declined_degraded);
  w.key("declined_cost").value(hedging.declined_cost);
  w.key("ticket_resumes").value(hedging.ticket_resumes);
  w.key("full_verifies").value(hedging.full_verifies);
  w.key("attest_failures").value(hedging.attest_failures);
  w.key("latency_hedged_p99_ns").value(latency_hedged.p99());
  w.end_object();
  w.key("churn");
  w.begin_object();
  w.key("shard_joins").value(churn.shard_joins);
  w.key("shard_leaves").value(churn.shard_leaves);
  w.key("replica_adds").value(churn.replica_adds);
  w.key("replica_removes").value(churn.replica_removes);
  w.key("replicas_moved").value(churn.replicas_moved);
  w.key("handoff_forwarded").value(churn.handoff_forwarded);
  w.key("handoff_drained").value(churn.handoff_drained);
  w.key("early_rejected").value(churn.early_rejected);
  w.key("max_moved_fraction").value(churn.max_moved_fraction);
  w.key("max_moved_x_n").value(churn.max_moved_x_n);
  w.end_object();
  w.end_object();
  return w.str();
}

// --- ShardedExperiment -------------------------------------------------------

namespace {

/// One in-flight copy of a request (primary + optional hedge backup).
/// kCrossing and kResponding exist only in speculative cross-shard hedging
/// mode: the former is a hedge copy in shard-to-shard transit or inside the
/// verification service, the latter a copy whose service finished and whose
/// response is on the wire — both cancellable mid-flight through net_event
/// when the other copy wins.
struct SCopy {
  enum class Where : std::uint8_t {
    kNone,
    kQueued,
    kActive,
    kBlackhole,
    kCrossing,
    kResponding,
    kDone
  };
  std::uint32_t replica = 0;  ///< global replica index
  std::uint32_t shard = 0;    ///< shard that dispatched this copy
  sim::Ns dispatched_ns = 0;
  sim::Ns req_hop_ns = 0;  ///< request-path fabric latency (charged with the
                           ///< response so queue dynamics stay simple)
  /// Admission handle while kQueued; O(1) hedge-loser cancellation.
  ReplicaQueue::Ticket ticket;
  /// Cancellable in-flight hop while kCrossing / kResponding (invalid once
  /// the hop lands or while the crossing sits inside the verify service,
  /// whose callback observes the request's done flag instead).
  EventId net_event;
  Where where = Where::kNone;
};

struct SReq {
  sim::Ns arrival = 0;
  std::uint32_t cls = 0;  ///< workload cost-class index
  int attempts = 0;       ///< failovers + hedges (shared retry budget)
  int chain_pos = 0;      ///< current position in `chain`
  bool done = false;
  bool hedged = false;
  bool crossed = false;        ///< ever admitted off the home shard
  bool retried_intra = false;  ///< ever re-dispatched within a shard
  std::vector<std::uint32_t> chain;  ///< deterministic shard failover order
  SCopy copy[2];
  [[nodiscard]] bool outstanding(int cid) const {
    return copy[cid].where == SCopy::Where::kQueued ||
           copy[cid].where == SCopy::Where::kActive ||
           copy[cid].where == SCopy::Where::kBlackhole ||
           copy[cid].where == SCopy::Where::kCrossing ||
           copy[cid].where == SCopy::Where::kResponding;
  }
};

struct SReplica {
  enum class St : std::uint8_t { kParked, kBooting, kWarm };
  ReplicaQueue queue;
  std::vector<sim::Ns> bounce_free;
  std::vector<std::uint64_t> active;  ///< copy tokens in service
  St state = St::kWarm;
  /// Owning shard (churn moves it); SliceMove::kUnowned when scaled in or
  /// not yet scaled out. Pool accounting never uses this — copies acquire
  /// and release against the shard that *dispatched* them, so a mid-flight
  /// ownership move cannot unbalance any pool.
  std::uint32_t shard = ShardedFrontend::SliceMove::kUnowned;
};

struct ShardState {
  /// Holds every fleet slot (member index == global replica index), with
  /// only this shard's warm, breaker-closed slice members enabled. Indexing
  /// by global replica keeps acquire/release stable across slice handoffs
  /// — and for a fixed topology the least-loaded order (in_flight, served,
  /// index) picks the identical replica it picked when pools held only the
  /// slice, because a slice is an ascending run of global indices.
  core::TeePool pool;
  std::vector<fault::CircuitBreaker> breakers;  ///< per global replica
  fault::HedgePolicy hedge;
  Autoscaler scaler;
  AutoscalerConfig scfg;
  int warm = 0;
  int booting = 0;
  std::uint64_t rejected = 0;       ///< scaler signal (queue-full 429s)
  std::uint64_t last_rejected = 0;
  std::uint64_t dispatches = 0;     ///< hedge budget denominator
  /// Speculative hedge copies currently queued against this shard's
  /// dispatch accounting: subtracted from the queue-depth demand signals
  /// (overload guard, elastic sample) so hedge duplicates never read as
  /// arrival pressure — a request counts once, at its home shard.
  std::uint64_t hedge_queued = 0;
  double ewma_service = 0;          ///< learned service time (early reject)
  std::uint64_t ewma_samples = 0;
  ShardStats stats;

  ShardState(std::string tee, const fault::HedgeConfig& h,
             const AutoscalerConfig& a)
      : pool(std::move(tee), core::LoadBalancePolicy::kLeastLoaded),
        hedge(h),
        scaler(a),
        scfg(a) {}
};

}  // namespace

ShardedResult ShardedExperiment::run_with_model(
    const ServiceModel& model) const {
  ShardedResult res;
  res.cfg = cfg_;
  res.model = model;

  ShardedFrontend frontend(cfg_.shard, cfg_.replicas);
  using SliceMove = ShardedFrontend::SliceMove;

  // Pre-size the fleet from the churn schedule: every shard that will ever
  // join and every replica that will ever scale out gets its slot (state,
  // queue, host name, pool member) up front, so churn never reallocates
  // anything the event handlers hold references into. Indices are stable
  // for the run — exactly the HashRing contract.
  const bool churn = cfg_.faults.has_churn();
  const bool elastic_on = cfg_.elastic.enabled;
  /// Paths that must survive live membership changes (re-routing onto a
  /// dead shard, ring-movement probes) are needed by scripted churn and
  /// controller-originated churn alike.
  const bool topo_dynamic = churn || elastic_on;
  int s_max = frontend.shards();
  auto r_max = static_cast<std::uint32_t>(cfg_.replicas);
  if (churn)
    for (const fault::FaultEvent& e : cfg_.faults.events()) {
      if (e.kind == fault::FaultKind::kShardJoin) ++s_max;
      if (e.kind == fault::FaultKind::kReplicaAdd) r_max += e.replica;
    }
  // The controller's capacity budget bounds everything it can ever order,
  // so elastic joiners pre-size the same way scripted churn does.
  if (elastic_on) {
    s_max += cfg_.elastic.max_extra_shards;
    r_max += static_cast<std::uint32_t>(
        std::max(0, cfg_.elastic.max_extra_replicas));
  }
  const int S = s_max;

  sim::VirtualClock clock;
  EventQueue events(clock);

  // The live topology. Only link *state* is consulted (path_state); the
  // fabric's RNG and HTTP machinery are never touched, so hop checks
  // consume no random draws — partition determinism by construction.
  net::Network fabric;
  fault::LinkFaultDriver driver(
      fabric, cfg_.faults,
      fault::ReplicaAddressing{.host_prefix = "replica-",
                               .hop_ns = cfg_.shard.hop_ns});
  const bool chaos = !cfg_.faults.empty();

  // Workload mix: class index keys the per-shard hedge histograms.
  std::vector<WorkloadClass> classes = cfg_.classes;
  if (classes.empty()) classes.push_back({});
  double weight_sum = 0;
  for (const WorkloadClass& c : classes) {
    if (c.weight <= 0 || c.service_mult <= 0)
      throw std::invalid_argument(
          "ShardedConfig: class weight and service_mult must be > 0");
    weight_sum += c.weight;
  }
  fault::HedgeConfig hcfg = cfg_.hedge;
  hcfg.cost_classes = static_cast<int>(classes.size());
  /// Speculative cross-shard hedging (the tentpole): backups launch at the
  /// ring successor, priced per crossing. Off: every hedge path below is
  /// the legacy intra-shard backup, byte-identical.
  const bool spec = hcfg.enabled && hcfg.cross_shard;

  // Shared verification service (attest-at-scale tentpole): one instance
  // fronts every shard's cross-admission trust decision, so collateral
  // fetched for a crossing into shard A also serves a crossing into shard
  // B, and a ticket minted by one crossing resumes all later ones. Normal
  // fleets have no attestation evidence to verify and never construct it.
  std::unique_ptr<attest::svc::VerifyService> vsvc;
  if (cfg_.attest_svc.enabled && cfg_.secure) {
    attest::svc::CostModel cm =
        cfg_.attest_svc.cost.platform.empty()
            ? attest::svc::CostModel::measure(cfg_.platform)
            : cfg_.attest_svc.cost;
    vsvc = std::make_unique<attest::svc::VerifyService>(
        cfg_.attest_svc, std::move(cm), [&clock] { return clock.now(); },
        [&events](sim::Ns t, std::function<void()> fn) {
          events.at(t, std::move(fn));
        },
        cfg_.faults.attest_outages());
  }

  // Host-name tables, precomputed: fabric checks are string-keyed.
  std::vector<std::string> shost(static_cast<std::size_t>(S));
  for (int s = 0; s < S; ++s) shost[s] = ShardedFrontend::shard_host(s);
  std::vector<std::string> rhost(static_cast<std::size_t>(r_max));
  for (std::uint32_t r = 0; r < r_max; ++r)
    rhost[r] = ShardedFrontend::replica_host(r);

  // Shard + replica fleets, every slot pre-created (see pre-sizing above).
  // Spare shard slots (join targets) start dead with an empty slice; spare
  // replica slots start parked and unowned.
  std::deque<ShardState> shards;
  std::vector<SReplica> reps(static_cast<std::size_t>(r_max));
  for (std::uint32_t r = 0; r < r_max; ++r) {
    reps[r].queue = ReplicaQueue(cfg_.queue);
    reps[r].bounce_free.assign(
        static_cast<std::size_t>(std::max(1, model.bounce_slots)), 0.0);
    reps[r].state = SReplica::St::kParked;
  }
  for (int s = 0; s < S; ++s) {
    const bool live0 = s < frontend.shards();
    AutoscalerConfig sc = cfg_.scaler;
    sc.cold_start_ns = model.cold_start_ns;
    sc.max_replicas =
        live0 ? static_cast<int>(frontend.slice(s).size()) : 0;
    sc.min_warm = cfg_.prewarm
                      ? sc.max_replicas
                      : std::clamp(sc.min_warm, 0, sc.max_replicas);
    shards.emplace_back(cfg_.platform + ":" + shost[s], hcfg, sc);
    ShardState& sh = shards.back();
    sh.stats.host = shost[s];
    sh.stats.live = live0;
    sh.breakers.assign(r_max, fault::CircuitBreaker(cfg_.breaker));
    for (std::uint32_t r = 0; r < r_max; ++r) {
      sh.pool.add_member({.host = rhost[r]});
      sh.pool.set_enabled(r, false);
    }
    if (!live0) continue;
    const auto& slice = frontend.slice(s);
    sh.stats.slice = static_cast<std::uint32_t>(slice.size());
    for (std::uint32_t local = 0; local < slice.size(); ++local) {
      const std::uint32_t r = slice[local];
      reps[r].shard = static_cast<std::uint32_t>(s);
      const bool start_warm = static_cast<int>(local) < sc.min_warm;
      sh.pool.set_enabled(r, start_warm);
      reps[r].state = start_warm ? SReplica::St::kWarm : SReplica::St::kParked;
      sh.warm += start_warm;
    }
    sh.stats.peak_warm = sh.warm;
  }

  sim::Rng jitter_rng(
      sim::hash_combine(cfg_.seed, sim::stable_hash("shard-service-jitter")));
  sim::Rng class_rng(
      sim::hash_combine(cfg_.seed, sim::stable_hash("shard-class")));
  ArrivalProcess arrivals(
      cfg_.arrival, std::max(cfg_.rate_rps, 1e-9),
      sim::hash_combine(cfg_.seed, sim::stable_hash("shard-arrivals")));

  std::vector<SReq> reqs;
  reqs.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(cfg_.requests, 1 << 22)));
  std::uint64_t issued = 0;
  int windows_active = 0;

  const auto retry_policy = [&](std::uint64_t id) {
    return fault::RetryPolicy(
        cfg_.retry,
        sim::hash_combine(
            cfg_.seed, sim::hash_combine(sim::stable_hash("shard-failover"),
                                         id)));
  };

  // Fabric views. Degraded-mode and probe checks look at both directions:
  // a shard that can send but never hears back is as partitioned as one
  // that cannot send at all.
  const auto replica_reachable = [&](std::uint32_t s, std::uint32_t r) {
    return fabric.path_state({shost[s], rhost[r]}).first !=
               net::LinkState::kDown &&
           fabric.path_state({rhost[r], shost[s]}).first !=
               net::LinkState::kDown;
  };
  const auto reachable_fraction = [&](std::uint32_t s) {
    const auto& slice = frontend.slice(static_cast<int>(s));
    if (slice.empty()) return 0.0;
    std::size_t up = 0;
    for (const std::uint32_t r : slice) up += replica_reachable(s, r);
    return static_cast<double>(up) / static_cast<double>(slice.size());
  };

  // Mutually recursive handlers. dispatch() takes the explicit target
  // shard: primaries pass their current chain shard, speculative hedges
  // the ring successor they crossed into.
  std::function<void(std::uint32_t, std::uint64_t)> service_done;
  std::function<void(std::uint64_t, int)> respond;
  std::function<void(std::uint64_t, int)> copy_failed;
  std::function<bool(std::uint64_t, int, std::uint32_t)> dispatch;
  std::function<void(std::uint64_t, bool)> failover;
  std::function<void(std::uint64_t)> send_to_shard;
  std::function<void(std::uint64_t)> admit;
  std::function<void(std::uint64_t, sim::Ns)> cross_admit;
  std::function<void(std::uint64_t, std::uint32_t)> hedge_arrive;
  std::function<void(std::uint64_t, std::uint32_t)> launch_spec_hedge;

  // Fleet-wide count of queued speculative hedge copies (the per-shard
  // split lives in ShardState::hedge_queued): the elastic controller's
  // queue-depth sample subtracts it so a hedge storm never reads as
  // demand.
  std::uint64_t hedge_q_fleet = 0;
  const auto hedge_dequeued = [&](const SCopy& cp) {
    ShardState& sh = shards[cp.shard];
    if (sh.hedge_queued > 0) --sh.hedge_queued;
    if (hedge_q_fleet > 0) --hedge_q_fleet;
  };

  // Measured price of a speculative crossing into shard `to` right now:
  // handshake + the trust re-establishment the verification service would
  // charge at arrival — a warm ticket-check when `to`'s session ticket is
  // live, a warm-collateral verify after a miss, the full collateral round
  // after a revocation / TCB-recovery flush. A non-counting peek (the
  // launch pays the real, possibly different, cost on arrival); the fabric
  // hop is added by the caller, which knows the live link factor.
  const auto trust_price = [&](std::uint32_t to) -> sim::Ns {
    if (!vsvc) return cfg_.secure ? cfg_.shard.cross_admit_ns : 0;
    const attest::svc::CostModel& cm = vsvc->model();
    if (!cm.supported) return 0;
    if (vsvc->tickets().valid(to, clock.now())) return cm.ticket_check_ns;
    if (cfg_.attest_svc.mode == attest::svc::VerifyMode::kEvtpm &&
        cm.evtpm_available)
      return cm.evtpm_round_ns;
    const attest::svc::CollateralKey key{cm.platform,
                                         vsvc->cache().current_tcb()};
    if (vsvc->cache().warm(key, clock.now())) return cm.warm_verify_ns();
    return cm.collateral_ns + cm.warm_verify_ns();
  };

  const auto give_up = [&](std::uint64_t id, core::ErrorCode code) {
    reqs[id].done = true;  // straggler copies must not complete it later
    ++res.failed;
    ++res.failure_codes[std::string(core::to_string(code))];
  };

  const auto breaker_failure = [&](std::uint32_t s, std::uint32_t r) {
    ShardState& sh = shards[s];
    sh.breakers[r].record_failure(clock.now());
    if (sh.breakers[r].state() == fault::BreakerState::kOpen)
      sh.pool.set_enabled(r, false);
  };

  auto start_service = [&](std::uint32_t r, std::uint64_t token) {
    SReplica& rep = reps[r];
    const std::uint64_t id = token >> 1;
    const int cid = static_cast<int>(token & 1);
    if (spec && cid == 1) hedge_dequeued(reqs[id].copy[cid]);
    const double j = jitter_rng.jitter(model.jitter_sigma);
    const double mult = classes[reqs[id].cls].service_mult;
    const sim::Ns parallel = model.parallel_ns * mult * j;
    const sim::Ns par_end = clock.now() + parallel;
    sim::Ns finish;
    if (model.serialized_ns > 0) {
      auto slot =
          std::min_element(rep.bounce_free.begin(), rep.bounce_free.end());
      const sim::Ns io_start = std::max(par_end, *slot);
      finish = io_start + model.serialized_ns * mult * j;
      *slot = finish;
    } else {
      finish = par_end;
    }
    // The overload guard learns the shard's service time as an EWMA over
    // every start it dispatched (duration is known at start in the
    // simulation — the model already rolled the jitter).
    if (cfg_.shard.early_reject || elastic_on) {
      ShardState& dsh = shards[reqs[id].copy[cid].shard];
      const auto dur = static_cast<double>(finish - clock.now());
      dsh.ewma_service =
          dsh.ewma_samples == 0
              ? dur
              : cfg_.shard.early_reject_alpha * dur +
                    (1.0 - cfg_.shard.early_reject_alpha) * dsh.ewma_service;
      ++dsh.ewma_samples;
    }
    rep.active.push_back(token);
    reqs[id].copy[cid].where = SCopy::Where::kActive;
    events.at(finish, [&, r, token] { service_done(r, token); });
  };

  auto try_start = [&](std::uint32_t r) {
    while (auto t = reps[r].queue.start_next()) start_service(r, *t);
  };

  // Speculative crossing landed: the hedge copy queues at the successor.
  // Failure (shard left the ring mid-flight, queue full, slice exhausted)
  // kills only this copy — copy_failed escalates to failover solely when
  // the primary is gone too, so accounted() holds on every path.
  hedge_arrive = [&](std::uint64_t id, std::uint32_t to) {
    SReq& rq = reqs[id];
    rq.copy[1].where = SCopy::Where::kNone;
    if (rq.done) return;
    if ((topo_dynamic && !frontend.shard_live(to)) ||
        frontend.slice(static_cast<int>(to)).empty()) {
      copy_failed(id, 1);
      return;
    }
    if (!dispatch(id, 1, to)) copy_failed(id, 1);
  };

  // Speculative cross-shard hedge launch (the tentpole). Gates, in order:
  // a live ring successor exists (else fall back to the legacy sibling
  // backup); never hedge *to* a shard that is already failing — an open
  // breaker on its slice, an exhausted pool, a degraded (shedding) or
  // unreachable successor would amplify load exactly where the fleet is
  // weakest; and the measured crossing price must be worth paying against
  // the class's learned residual tail (the min_benefit_ns clamp), which is
  // what declines hedges on a cold TDX crossing (~1.46 s) that a warm
  // ticket-check (~150 us) regime launches freely.
  launch_spec_hedge = [&](std::uint64_t id, std::uint32_t s) {
    SReq& rq = reqs[id];
    ShardState& sh = shards[s];
    std::uint32_t to = ShardedFrontend::SliceMove::kUnowned;
    for (std::size_t p = static_cast<std::size_t>(rq.chain_pos) + 1;
         p < rq.chain.size(); ++p)
      if (frontend.shard_live(rq.chain[p])) {
        to = rq.chain[p];
        break;
      }
    if (to == ShardedFrontend::SliceMove::kUnowned) {
      rq.hedged = true;  // single-shard ring: legacy sibling backup
      if (dispatch(id, 1, s)) {
        ++rq.attempts;
        ++res.hedges;
        ++res.hedging.fired;
        ++res.hedging.intra;
        ++sh.stats.hedges;
        sh.hedge.record_fired();
      }
      return;
    }
    const auto& tslice = frontend.slice(static_cast<int>(to));
    bool failing = tslice.empty() || shards[to].pool.enabled_count() == 0;
    if (!failing)
      for (const std::uint32_t r : tslice)
        if (shards[to].breakers[r].state() != fault::BreakerState::kClosed) {
          failing = true;
          break;
        }
    if (failing) {
      ++res.hedging.declined_breaker;
      return;
    }
    if (chaos &&
        reachable_fraction(to) < cfg_.shard.degraded_min_reachable) {
      ++res.hedging.declined_degraded;
      return;
    }
    const auto [st, f] = fabric.path_state({shost[s], shost[to]});
    if (st == net::LinkState::kDown) {
      ++res.hedging.declined_degraded;
      return;
    }
    const sim::Ns wire = cfg_.shard.hop_ns * f + cfg_.shard.handshake_ns;
    if (!sh.hedge.worth_hedging(rq.cls, wire + trust_price(to))) {
      ++res.hedging.declined_cost;
      return;
    }
    rq.hedged = true;
    ++rq.attempts;
    ++res.hedges;
    ++res.hedging.fired;
    ++res.hedging.cross;
    ++sh.stats.hedges;
    sh.hedge.record_fired();
    SCopy& cp = rq.copy[1];
    cp.replica = 0;
    cp.shard = to;
    cp.dispatched_ns = clock.now();
    cp.req_hop_ns = 0;
    cp.where = SCopy::Where::kCrossing;
    cp.net_event = events.after(wire, [&, id, to] {
      SReq& rq2 = reqs[id];
      rq2.copy[1].net_event = EventId{};
      if (rq2.done) {  // loser cancel raced the hop landing
        rq2.copy[1].where = SCopy::Where::kDone;
        return;
      }
      if (!vsvc) {
        const sim::Ns extra = cfg_.secure ? cfg_.shard.cross_admit_ns : 0;
        if (extra > 0)
          rq2.copy[1].net_event =
              events.after(extra, [&, id, to] { hedge_arrive(id, to); });
        else
          hedge_arrive(id, to);
        return;
      }
      const sim::Ns deadline =
          cfg_.deadline_ns > 0 ? rq2.arrival + cfg_.deadline_ns : 0;
      // Trust is established at *arrival*, not launch: a ticket that
      // expired, was revoked, or was TCB-recovery-flushed while the hedge
      // was in flight falls back to the full verify right here — the
      // lifecycle races the attest tests pin down.
      vsvc->verify(to, /*tcb=*/0, deadline,
                   [&, id](const attest::svc::VerifyOutcome& out) {
                     SReq& rq3 = reqs[id];
                     if (rq3.done) {
                       rq3.copy[1].where = SCopy::Where::kDone;
                       return;
                     }
                     const std::uint32_t dest = rq3.copy[1].shard;
                     if (out.ok()) {
                       if (out.status == attest::svc::VerifyStatus::kResumed)
                         ++res.hedging.ticket_resumes;
                       else
                         ++res.hedging.full_verifies;
                       hedge_arrive(id, dest);
                       return;
                     }
                     ++res.hedging.attest_failures;
                     rq3.copy[1].where = SCopy::Where::kNone;
                     copy_failed(id, 1);
                   });
    });
  };

  // Hedge timer for the primary copy, armed per shard with the request's
  // cost-class threshold (satellite: workload-aware hedging). In
  // cross-shard mode the backup races from the ring successor instead of
  // a home-shard sibling.
  auto arm_hedge = [&](std::uint64_t id) {
    const std::uint32_t s = reqs[id].chain[reqs[id].chain_pos];
    const sim::Ns delay = shards[s].hedge.threshold_ns(reqs[id].cls);
    if (delay <= 0) return;
    events.after(delay, [&, id, s] {
      SReq& rq = reqs[id];
      if (rq.done || rq.hedged || !rq.outstanding(0)) return;
      if (rq.chain[rq.chain_pos] != s) return;  // failed over meanwhile
      ShardState& sh = shards[s];
      // Per-shard budget: a partition-stressed shard may exhaust its own
      // hedge allowance without silencing the healthy shards.
      if (!sh.hedge.allow(sh.stats.hedges, sh.dispatches)) {
        if (spec) ++res.hedging.declined_budget;
        return;
      }
      if (!retry_policy(id).should_retry(rq.attempts + 1,
                                         clock.now() - rq.arrival,
                                         cfg_.deadline_ns))
        return;
      if (spec) {
        launch_spec_hedge(id, s);
        return;
      }
      rq.hedged = true;
      if (dispatch(id, 1, s)) {
        ++rq.attempts;
        ++res.hedges;
        ++sh.stats.hedges;
        sh.hedge.record_fired();
      }
    });
  };

  dispatch = [&](std::uint64_t id, int cid, std::uint32_t s) -> bool {
    SReq& rq = reqs[id];
    ShardState& sh = shards[s];
    const std::uint32_t exclude =
        hcfg.enabled && rq.outstanding(1 - cid) && rq.copy[1 - cid].shard == s
            ? rq.copy[1 - cid].replica
            : core::TeePool::kNoExclude;
    core::PoolMember* m = sh.pool.acquire_excluding(exclude);
    if (!m) {
      // Slice exhausted mid-flight (breakers opened since admission): a
      // primary escalates to the next shard, a hedge just doesn't fire.
      if (cid == 0) {
        if (rq.chain_pos + 1 <
            static_cast<int>(rq.chain.size())) {
          ++rq.chain_pos;
          rq.crossed = true;
          ++res.cross_failovers;
          send_to_shard(id);
        } else {
          give_up(id, core::ErrorCode::kNoCapacity);
        }
      }
      return false;
    }
    const std::uint32_t r = m->index;  // member index == global replica
    rq.copy[cid].replica = r;
    rq.copy[cid].shard = s;
    rq.copy[cid].dispatched_ns = clock.now();
    const auto [st, f] = fabric.path_state({shost[s], rhost[r]});
    if (st == net::LinkState::kDown) {
      // The shard has not noticed the partition yet: the dispatch
      // black-holes, the timeout feeds this slice member's breaker, and
      // the request retries — intra-shard first.
      rq.copy[cid].where = SCopy::Where::kBlackhole;
      if (cid == 0) ++sh.dispatches;
      events.after(cfg_.detect_timeout_ns, [&, s, r, id, cid] {
        ShardState& sh2 = shards[s];
        sh2.pool.release(&sh2.pool.member(r));
        breaker_failure(s, r);
        copy_failed(id, cid);
      });
      if (cid == 0) arm_hedge(id);
      return true;
    }
    const ReplicaQueue::Ticket tk =
        reps[r].queue.admit(id * 2 + static_cast<std::uint64_t>(cid));
    if (!tk.valid()) {
      sh.pool.release(m);
      if (cid == 0) {
        // 429 back to the client: typed, terminal, accounted.
        ++res.rejected;
        ++sh.rejected;
        res.last_reject_ns = clock.now();
        reqs[id].done = true;
      }
      rq.copy[cid].where = SCopy::Where::kNone;
      return false;
    }
    rq.copy[cid].ticket = tk;
    rq.copy[cid].where = SCopy::Where::kQueued;
    rq.copy[cid].req_hop_ns = cfg_.shard.hop_ns * f;
    if (cid == 0) {
      ++sh.dispatches;
      arm_hedge(id);
    } else if (spec) {
      ++sh.hedge_queued;
      ++hedge_q_fleet;
    }
    try_start(r);
    return true;
  };

  service_done = [&](std::uint32_t r, std::uint64_t token) {
    SReplica& rep = reps[r];
    const std::uint64_t id = token >> 1;
    const int cid = static_cast<int>(token & 1);
    rep.queue.complete();
    if (auto it = std::find(rep.active.begin(), rep.active.end(), token);
        it != rep.active.end())
      rep.active.erase(it);
    // Release against the shard that *dispatched* this copy: a slice
    // handoff may have moved the replica to a new owner mid-service, but
    // the acquire was charged to the old one.
    const std::uint32_t ds = reqs[id].copy[cid].shard;
    ShardState& sh = shards[ds];
    sh.pool.release(&sh.pool.member(r));
    try_start(r);
    // Response path: replica -> shard -> client. Any down hop loses the
    // answer after the work was done — the asymmetric-partition signature;
    // a slow hop delivers late by the slowest hop's factor.
    const auto [st, f] =
        fabric.path_state({rhost[r], shost[ds], "client"});
    if (st == net::LinkState::kDown) {
      ++res.responses_lost;
      const sim::Ns deadline =
          std::max(clock.now(), reqs[id].copy[cid].dispatched_ns +
                                    cfg_.detect_timeout_ns);
      events.at(deadline, [&, id, cid, ds, r] {
        if (!reqs[id].done) breaker_failure(ds, r);
        copy_failed(id, cid);
      });
      return;
    }
    const sim::Ns wire =
        reqs[id].copy[cid].req_hop_ns + 2 * cfg_.shard.hop_ns * f;
    if (spec) {
      // Track the response wire as a cancellable hop, so a copy that
      // loses the hedge race while its answer crawls back through a
      // gray-slow link is cancelled instead of delivered twice.
      reqs[id].copy[cid].where = SCopy::Where::kResponding;
      reqs[id].copy[cid].net_event =
          events.after(wire, [&, id, cid] { respond(id, cid); });
      return;
    }
    events.after(wire, [&, id, cid] { respond(id, cid); });
  };

  respond = [&](std::uint64_t id, int cid) {
    SReq& rq = reqs[id];
    if (rq.done) {
      rq.copy[cid].where = SCopy::Where::kDone;  // hedge-losing copy
      return;
    }
    rq.done = true;
    rq.copy[cid].where = SCopy::Where::kDone;
    const sim::Ns lat = clock.now() - rq.arrival;
    const std::uint32_t s = rq.copy[cid].shard;
    if (id >= cfg_.warmup_requests) {
      res.latency.record(lat);
      if (cfg_.measure_end_ns > cfg_.measure_start_ns &&
          clock.now() >= cfg_.measure_start_ns &&
          clock.now() < cfg_.measure_end_ns)
        res.latency_window.record(lat);
      if (chaos && windows_active > 0) res.latency_fault.record(lat);
      if (spec && rq.hedged) res.latency_hedged.record(lat);
      if (rq.crossed)
        res.latency_cross.record(lat);
      else if (rq.retried_intra)
        res.latency_intra.record(lat);
    }
    ++res.completed;
    ++shards[s].stats.completed;
    if (cid == 1) {
      ++res.hedge_wins;
      if (spec) {
        ++res.hedging.wins;
        if (rq.copy[1].shard != rq.copy[0].shard) ++res.hedging.cross_wins;
      }
    }
    if (hcfg.enabled) shards[s].hedge.observe(rq.cls, lat);
    // First response wins: a queued loser gives its slot back (to the
    // shard that dispatched it); a speculative loser still in fabric
    // transit — crossing to the successor, or response on the wire — has
    // its in-flight hop cancelled outright. A crossing parked inside the
    // verification service has no event to cancel; its verify callback
    // observes the done flag instead. Active losers drain in place.
    SCopy& other = rq.copy[1 - cid];
    if (other.where == SCopy::Where::kQueued) {
      SReplica& orep = reps[other.replica];
      if (orep.queue.cancel(other.ticket)) {
        ShardState& osh = shards[other.shard];
        osh.pool.release(&osh.pool.member(other.replica));
        if (spec && (1 - cid) == 1) {
          hedge_dequeued(other);
          ++res.hedging.cancelled_queue;
        }
        other.where = SCopy::Where::kNone;
      }
    } else if (other.where == SCopy::Where::kCrossing) {
      if (events.cancel(other.net_event)) {
        other.where = SCopy::Where::kNone;
        ++res.hedging.cancelled_inflight;
      }
    } else if (other.where == SCopy::Where::kResponding) {
      if (events.cancel(other.net_event)) {
        other.where = SCopy::Where::kDone;
        ++res.hedging.cancelled_inflight;
      }
    }
  };

  copy_failed = [&](std::uint64_t id, int cid) {
    SReq& rq = reqs[id];
    rq.copy[cid].where = SCopy::Where::kNone;
    if (rq.done) return;
    if (rq.outstanding(1 - cid)) return;  // a hedge copy is still racing
    failover(id, /*advance_shard=*/false);
  };

  failover = [&](std::uint64_t id, bool advance_shard) {
    SReq& rq = reqs[id];
    ++res.failovers;
    const int attempt = ++rq.attempts;
    const fault::RetryPolicy policy = retry_policy(id);
    const fault::RetryVerdict v =
        policy.verdict(attempt, clock.now() - rq.arrival, cfg_.deadline_ns);
    if (v != fault::RetryVerdict::kRetry) {
      give_up(id, v == fault::RetryVerdict::kDeadlineExceeded
                      ? core::ErrorCode::kDeadlineExceeded
                      : core::ErrorCode::kTransport);
      return;
    }
    ++res.retries;
    events.after(policy.backoff_ns(attempt), [&, id, advance_shard] {
      SReq& rq2 = reqs[id];
      if (rq2.done) return;
      rq2.hedged = false;  // the fresh attempt may hedge again
      bool adv = advance_shard;
      // A shard whose whole slice is breaker-open cannot serve the retry.
      if (!adv &&
          shards[rq2.chain[rq2.chain_pos]].pool.enabled_count() == 0)
        adv = true;
      if (adv) {
        if (rq2.chain_pos + 1 >= static_cast<int>(rq2.chain.size())) {
          give_up(id, core::ErrorCode::kNoCapacity);
          return;
        }
        ++rq2.chain_pos;
        rq2.crossed = true;
        ++res.cross_failovers;
        send_to_shard(id);  // re-admission: hop + handshake + attest
      } else {
        rq2.retried_intra = true;
        dispatch(id, 0, rq2.chain[rq2.chain_pos]);  // intra re-dispatch
      }
    });
  };

  // Cross-shard trust establishment after `wire_ns` of fabric transit
  // (hop + handshake). Without the verification service the successor
  // shard charges the flat cross_admit_ns — a single event at the same
  // instant as before the service existed, so the legacy stream is
  // byte-identical. With it, the crossing verifies through the shared
  // service: ticket resumptions and cache hits make repeat crossings
  // cheap, and every non-ok outcome feeds the existing failover path,
  // whose RetryVerdict decides between another shard and a typed give-up.
  cross_admit = [&](std::uint64_t id, sim::Ns wire_ns) {
    if (!vsvc) {
      events.after(wire_ns + cfg_.shard.cross_admit_ns,
                   [&, id] { admit(id); });
      return;
    }
    events.after(wire_ns, [&, id] {
      SReq& rq = reqs[id];
      if (rq.done) return;
      const std::uint32_t s = rq.chain[rq.chain_pos];
      const sim::Ns deadline =
          cfg_.deadline_ns > 0 ? rq.arrival + cfg_.deadline_ns : 0;
      // Subject = the target shard: its slice evidence bundle is what the
      // crossing re-verifies, so one ticket covers all later crossings
      // into the same shard.
      vsvc->verify(s, /*tcb=*/0, deadline,
                   [&, id](const attest::svc::VerifyOutcome& out) {
                     if (reqs[id].done) return;
                     if (out.ok()) {
                       admit(id);
                       return;
                     }
                     failover(id, /*advance_shard=*/true);
                   });
    });
  };

  // Client (or forwarding shard) delivers the request to its current chain
  // shard over the fabric; cross-shard admissions pay the re-establishment
  // costs on top of the hop.
  send_to_shard = [&](std::uint64_t id) {
    SReq& rq = reqs[id];
    const std::uint32_t s = rq.chain[rq.chain_pos];
    const auto [st, f] = fabric.path_state({"client", shost[s]});
    if (st == net::LinkState::kDown) {
      // Black-holed admission: the client notices at its detection timeout
      // and walks the chain — the cross-shard failover trigger.
      events.after(cfg_.detect_timeout_ns, [&, id] {
        if (!reqs[id].done) failover(id, /*advance_shard=*/true);
      });
      return;
    }
    const sim::Ns lat = cfg_.shard.hop_ns * f;
    if (rq.chain_pos > 0) {
      cross_admit(id, lat + cfg_.shard.handshake_ns);
      return;
    }
    events.after(lat, [&, id] { admit(id); });
  };

  admit = [&](std::uint64_t id) {
    SReq& rq = reqs[id];
    if (rq.done) return;
    const std::uint32_t s = rq.chain[rq.chain_pos];
    // The shard left the ring while the request was in transit: re-route
    // from scratch over the live membership (route() only ever returns
    // live shards, so this cannot loop on a stable topology).
    if (topo_dynamic && !frontend.shard_live(s)) {
      rq.chain = frontend.route(id);
      rq.chain_pos = 0;
      send_to_shard(id);
      return;
    }
    ShardState& sh = shards[s];
    // Overload guard: reject at admission when the predicted queueing
    // delay — live slice queue depth times the learned EWMA service time
    // over the warm capacity — exceeds the budget. A terminal, typed 429:
    // cheaper for the client than an unbounded queue wait, and every
    // rejection feeds the autoscaler's rejected_delta scale-up signal.
    if (cfg_.shard.early_reject &&
        sh.ewma_samples >= cfg_.shard.early_reject_min_samples) {
      std::uint64_t queued = 0;
      std::uint64_t cap = 0;
      for (const std::uint32_t r : frontend.slice(static_cast<int>(s))) {
        queued += reps[r].queue.queued();
        if (reps[r].state == SReplica::St::kWarm)
          cap += static_cast<std::uint64_t>(cfg_.queue.concurrency);
      }
      // Hedge duplicates are not demand: a hedged request counts once, at
      // its home shard, so the overload guard must not 429 primaries off
      // the back of speculative copies parked in the successor's queues.
      if (spec) queued -= std::min(queued, sh.hedge_queued);
      if (cap > 0) {
        const double wait_ns = static_cast<double>(queued) *
                               sh.ewma_service / static_cast<double>(cap);
        if (wait_ns >
            static_cast<double>(cfg_.shard.early_reject_budget_ns)) {
          ++res.rejected;
          ++sh.rejected;  // autoscaler signal
          ++sh.stats.early_rejected;
          ++res.churn.early_rejected;
          res.last_reject_ns = clock.now();
          rq.done = true;
          return;
        }
      }
    }
    if (rq.chain_pos == 0)
      ++sh.stats.admitted;
    else
      ++sh.stats.cross_admitted;
    // Degraded mode: a shard seeing under degraded_min_reachable of its
    // slice sheds the admission to its ring successor instead of
    // dispatching into a mostly-partitioned slice (and instead of
    // black-holing). Shedding advances the chain without burning a retry
    // attempt, so it is bounded by the shard count.
    const bool degraded =
        chaos && rq.chain_pos + 1 < static_cast<int>(rq.chain.size()) &&
        reachable_fraction(s) < cfg_.shard.degraded_min_reachable;
    if (degraded || sh.pool.enabled_count() == 0) {
      if (rq.chain_pos + 1 >= static_cast<int>(rq.chain.size())) {
        give_up(id, core::ErrorCode::kNoCapacity);
        return;
      }
      ++sh.stats.shed;
      ++res.shed;
      ++rq.chain_pos;
      rq.crossed = true;
      const std::uint32_t to = rq.chain[rq.chain_pos];
      const auto [st, f] = fabric.path_state({shost[s], shost[to]});
      if (st == net::LinkState::kDown) {
        // Successor unreachable from here: degenerate to the client
        // timeout, which retries further down the chain.
        events.after(cfg_.detect_timeout_ns, [&, id] {
          if (!reqs[id].done) failover(id, /*advance_shard=*/true);
        });
        return;
      }
      cross_admit(id, cfg_.shard.hop_ns * f + cfg_.shard.handshake_ns);
      return;
    }
    dispatch(id, 0, s);
  };

  // --- load generation -------------------------------------------------------
  std::function<void()> on_arrival = [&] {
    const std::uint64_t id = issued++;
    SReq rq;
    rq.arrival = clock.now();
    if (classes.size() > 1) {
      double u = class_rng.next_double() * weight_sum;
      std::uint32_t cls = 0;
      for (; cls + 1 < classes.size(); ++cls) {
        u -= classes[cls].weight;
        if (u < 0) break;
      }
      rq.cls = cls;
    }
    rq.chain = frontend.route(id);
    reqs.push_back(std::move(rq));
    ++res.offered;
    send_to_shard(id);
    if (issued < cfg_.requests)
      events.after(arrivals.next_gap(), Action::ref(on_arrival));
  };

  // --- probes + per-shard autoscaler ticks -----------------------------------
  const auto backlog_total = [&] {
    std::uint64_t busy = 0;
    for (const SReplica& rep : reps) busy += rep.queue.backlog();
    return busy;
  };

  std::function<void()> probe = [&] {
    const sim::Ns now = clock.now();
    bool any_open = false;
    // Dynamic bound: joined shards probe from their first interval after
    // the join; departed shards have empty slices and drop out naturally.
    for (int s = 0; s < frontend.shards(); ++s) {
      ShardState& sh = shards[static_cast<std::size_t>(s)];
      const auto& slice = frontend.slice(s);
      for (const std::uint32_t r : slice) {
        if (reps[r].state == SReplica::St::kParked ||
            reps[r].state == SReplica::St::kBooting)
          continue;
        fault::CircuitBreaker& br = sh.breakers[r];
        const bool healthy = reps[r].state == SReplica::St::kWarm &&
                             replica_reachable(static_cast<std::uint32_t>(s),
                                               r);
        if (br.state() == fault::BreakerState::kClosed) {
          if (healthy) {
            br.record_success(now);
          } else {
            br.record_failure(now);
            if (br.state() == fault::BreakerState::kOpen)
              sh.pool.set_enabled(r, false);
          }
        } else if (br.allow(now)) {  // open past cooldown / half-open idle
          if (healthy) {
            br.record_success(now);
            if (br.state() == fault::BreakerState::kClosed)
              sh.pool.set_enabled(r, true);
          } else {
            br.record_failure(now);
          }
        }
        if (br.state() != fault::BreakerState::kClosed) any_open = true;
      }
    }
    if (issued < cfg_.requests || backlog_total() > 0 ||
        windows_active > 0 || any_open)
      events.after(cfg_.probe_interval_ns, Action::ref(probe));
  };

  // Boot completion, shared by the scaler tick and the scale-out churn
  // path. Looks the owner up at completion time: a slice handoff may have
  // moved the replica while it booted, and a scale-in may have orphaned it
  // (in which case it parks straight back).
  const auto boot_done = [&](std::uint32_t r) {
    if (reps[r].state != SReplica::St::kBooting) return;
    const std::uint32_t os = reps[r].shard;
    if (os == SliceMove::kUnowned) {
      reps[r].state = SReplica::St::kParked;
      return;
    }
    ShardState& sh2 = shards[os];
    reps[r].state = SReplica::St::kWarm;
    sh2.pool.set_enabled(r, true);
    --sh2.booting;
    ++sh2.warm;
    sh2.stats.peak_warm = std::max(sh2.stats.peak_warm, sh2.warm);
  };

  std::function<void()> tick = [&] {
    int booting_total = 0;
    for (int s = 0; s < frontend.shards(); ++s) {
      ShardState& sh = shards[static_cast<std::size_t>(s)];
      const auto& slice = frontend.slice(s);
      if (slice.empty()) continue;
      std::uint64_t in_service = 0, queued = 0;
      for (const std::uint32_t r : slice) {
        in_service += static_cast<std::uint64_t>(reps[r].queue.in_service());
        queued += reps[r].queue.queued();
      }
      const std::uint64_t rejected_delta = sh.rejected - sh.last_rejected;
      sh.last_rejected = sh.rejected;
      const int delta =
          sh.scaler.evaluate(sh.warm, sh.booting, in_service, queued,
                             cfg_.queue.concurrency, clock.now(),
                             rejected_delta);
      if (delta > 0) {
        int to_boot = delta;
        for (std::uint32_t local = 0;
             local < slice.size() && to_boot > 0; ++local) {
          const std::uint32_t r = slice[local];
          if (reps[r].state != SReplica::St::kParked) continue;
          reps[r].state = SReplica::St::kBooting;
          ++sh.booting;
          --to_boot;
          events.after(sh.scfg.cold_start_ns, [&, r] { boot_done(r); });
        }
      } else if (delta < 0) {
        // Park the highest-index idle warm slice member.
        for (std::uint32_t local = static_cast<std::uint32_t>(slice.size());
             local-- > 0;) {
          const std::uint32_t r = slice[local];
          if (reps[r].state != SReplica::St::kWarm) continue;
          if (!reps[r].queue.idle() || sh.pool.member(r).in_flight != 0)
            continue;
          if (chaos &&
              sh.breakers[r].state() != fault::BreakerState::kClosed)
            continue;
          reps[r].state = SReplica::St::kParked;
          sh.pool.set_enabled(r, false);
          --sh.warm;
          break;
        }
      }
      booting_total += sh.booting;
    }
    if (issued < cfg_.requests || backlog_total() > 0 || booting_total > 0 ||
        (chaos && windows_active > 0))
      events.after(cfg_.scaler.tick_ns, Action::ref(tick));
  };

  // --- churn driver ----------------------------------------------------------
  // Topology-membership events from the FaultPlan, replayed on the virtual
  // clock. Every handler preserves the zero-loss invariant: a request's
  // copies either drain in place on the departing owner or are forwarded /
  // re-dispatched, never dropped.

  // Deterministic probe-key set measuring how much keyspace each ring
  // event actually moved (the ~1/N minimal-disruption bound the bench
  // asserts). Fixed keys, fixed count — no RNG, no clock.
  std::vector<std::uint64_t> probe_keys;
  if (topo_dynamic) {
    probe_keys.reserve(2048);
    for (std::uint64_t i = 0; i < 2048; ++i)
      probe_keys.push_back(
          sim::hash_combine(sim::stable_hash("churn-probe"), i));
  }
  const auto ring_owners = [&] {
    std::vector<std::uint32_t> o;
    o.reserve(probe_keys.size());
    for (const std::uint64_t k : probe_keys)
      o.push_back(frontend.ring().owner(k));
    return o;
  };
  const auto record_movement = [&](const std::vector<std::uint32_t>& before,
                                   std::size_t n_ref) {
    const auto after = ring_owners();
    std::size_t moved = 0;
    for (std::size_t i = 0; i < before.size(); ++i)
      moved += before[i] != after[i];
    const double frac =
        static_cast<double>(moved) / static_cast<double>(before.size());
    res.churn.max_moved_fraction =
        std::max(res.churn.max_moved_fraction, frac);
    res.churn.max_moved_x_n =
        std::max(res.churn.max_moved_x_n,
                 frac * static_cast<double>(n_ref));
  };

  // Re-clamp a shard's autoscaler band to its post-handoff slice.
  const auto update_shard_limits = [&](std::uint32_t s) {
    ShardState& sh = shards[s];
    const auto sz = static_cast<int>(frontend.slice(static_cast<int>(s))
                                         .size());
    const int mn =
        cfg_.prewarm ? sz : std::clamp(cfg_.scaler.min_warm, 0, sz);
    sh.scfg.max_replicas = sz;
    sh.scfg.min_warm = mn;
    sh.scaler.set_limits(mn, sz);
    sh.stats.slice = static_cast<std::uint32_t>(sz);
  };

  // Apply a rebuild's ownership changes to the running fleet: disable the
  // member in the old owner's pool, transfer warm/booting accounting, and
  // enable it in the new owner's (breaker permitting). Copies already
  // dispatched keep draining against the old owner's pool — see SReplica.
  const auto apply_moves = [&](const std::vector<SliceMove>& moves) {
    for (const SliceMove& mv : moves) {
      const std::uint32_t r = mv.replica;
      if (mv.from != SliceMove::kUnowned) {
        ShardState& fs = shards[mv.from];
        fs.pool.set_enabled(r, false);
        if (reps[r].state == SReplica::St::kWarm) --fs.warm;
        if (reps[r].state == SReplica::St::kBooting) --fs.booting;
      }
      reps[r].shard = mv.to;
      if (mv.to != SliceMove::kUnowned) {
        ShardState& ts = shards[mv.to];
        if (reps[r].state == SReplica::St::kWarm) {
          if (ts.breakers[r].state() == fault::BreakerState::kClosed)
            ts.pool.set_enabled(r, true);
          ++ts.warm;
          ts.stats.peak_warm = std::max(ts.stats.peak_warm, ts.warm);
        }
        if (reps[r].state == SReplica::St::kBooting) ++ts.booting;
        if (mv.from != SliceMove::kUnowned) ++res.churn.replicas_moved;
      }
    }
    for (int s = 0; s < frontend.shards(); ++s)
      update_shard_limits(static_cast<std::uint32_t>(s));
  };

  // Slice handoff of one queued-but-unstarted request off a departing
  // shard: fresh route over the live ring, then shard-to-shard forwarding
  // over the fabric — a handshake plus, on secure fleets, the warm-ticket
  // re-attestation (through the live verify service when it is on). Does
  // not burn a retry attempt: the handoff is the fabric's fault, not the
  // request's.
  const auto handoff_forward = [&](std::uint64_t id, std::uint32_t from) {
    SReq& rq = reqs[id];
    rq.chain = frontend.route(id);
    rq.chain_pos = 0;
    rq.hedged = false;
    ++res.churn.handoff_forwarded;
    const std::uint32_t to = rq.chain.front();
    const auto [st, f] = fabric.path_state({shost[from], shost[to]});
    if (st == net::LinkState::kDown) {
      events.after(cfg_.detect_timeout_ns, [&, id] {
        if (!reqs[id].done) failover(id, /*advance_shard=*/true);
      });
      return;
    }
    const sim::Ns wire = cfg_.shard.hop_ns * f + cfg_.shard.handshake_ns;
    if (vsvc) {
      events.after(wire, [&, id, to] {
        if (reqs[id].done) return;
        const sim::Ns deadline =
            cfg_.deadline_ns > 0 ? reqs[id].arrival + cfg_.deadline_ns : 0;
        vsvc->verify(to, /*tcb=*/0, deadline,
                     [&, id](const attest::svc::VerifyOutcome& out) {
                       if (reqs[id].done) return;
                       if (out.ok()) {
                         admit(id);
                         return;
                       }
                       failover(id, /*advance_shard=*/true);
                     });
      });
      return;
    }
    const sim::Ns attest_ns =
        cfg_.secure ? cfg_.shard.handoff_attest_ns : 0;
    events.after(wire + attest_ns, [&, id] { admit(id); });
  };

  // Membership-change bodies, shared between the scripted FaultPlan replay
  // and the elastic controller's self-originated events. Both return false
  // when the structural guards refuse the change (nothing to remove, last
  // live member) — the scripted path ignores that, the controller path
  // turns it into an abort it reports back to its ledger.
  const auto do_shard_join = [&] {
    const auto before = ring_owners();
    std::vector<SliceMove> moves;
    const int s = frontend.add_shard(&moves);
    record_movement(before,
                    static_cast<std::size_t>(frontend.live_shards()));
    ++res.churn.shard_joins;
    shards[static_cast<std::size_t>(s)].stats.live = true;
    apply_moves(moves);
    return static_cast<std::uint32_t>(s);
  };

  const auto do_shard_leave = [&](std::uint32_t s) -> bool {
    if (s >= static_cast<std::uint32_t>(frontend.shards()) ||
        !frontend.shard_live(s) || frontend.live_shards() <= 1)
      return false;  // nothing to leave — refuse rather than wedge the run
    const auto n_before =
        static_cast<std::size_t>(frontend.live_shards());
    const auto before = ring_owners();
    const auto moves = frontend.remove_shard(s);
    record_movement(before, n_before);
    ++res.churn.shard_leaves;
    shards[s].stats.live = false;
    apply_moves(moves);
    // Handoff protocol: queued-but-unstarted copies this shard
    // dispatched leave its queues and forward to the new owners;
    // active (and black-holed) copies drain in place and release
    // against this shard's pool when they finish.
    for (std::uint64_t id = 0; id < reqs.size(); ++id) {
      for (int cid = 0; cid < 2; ++cid) {
        SCopy& cp = reqs[id].copy[cid];
        if (cp.shard != s) continue;
        // kResponding finished its service; like kActive work it drains —
        // the answer is already on the wire. A kCrossing hedge has not
        // reached the departing shard yet: hedge_arrive notices the dead
        // ring slot when the hop lands and kills the copy there.
        if (cp.where == SCopy::Where::kActive ||
            cp.where == SCopy::Where::kBlackhole ||
            cp.where == SCopy::Where::kResponding) {
          ++res.churn.handoff_drained;
          continue;
        }
        if (cp.where != SCopy::Where::kQueued) continue;
        if (!reps[cp.replica].queue.cancel(cp.ticket)) continue;
        shards[s].pool.release(&shards[s].pool.member(cp.replica));
        if (spec && cid == 1) hedge_dequeued(cp);
        cp.where = SCopy::Where::kNone;
        // A hedge backup dies with its shard; the primary forwards.
        if (cid == 0 && !reqs[id].done) handoff_forward(id, s);
      }
    }
    return true;
  };

  const auto do_replica_remove = [&](std::uint32_t r) -> bool {
    if (!frontend.replica_live(r) || frontend.live_replicas() <= 1)
      return false;
    const auto moves = frontend.remove_replica(r);
    ++res.churn.replica_removes;
    apply_moves(moves);
    // Queued copies re-dispatch through their shard's current slice;
    // active work drains in place (the VM finishes what it started).
    for (std::uint64_t id = 0; id < reqs.size(); ++id) {
      for (int cid = 0; cid < 2; ++cid) {
        SCopy& cp = reqs[id].copy[cid];
        if (cp.replica != r) continue;
        if (cp.where == SCopy::Where::kActive) {
          ++res.churn.handoff_drained;
          continue;
        }
        if (cp.where != SCopy::Where::kQueued) continue;
        if (!reps[r].queue.cancel(cp.ticket)) continue;
        shards[cp.shard].pool.release(
            &shards[cp.shard].pool.member(r));
        if (spec && cid == 1) hedge_dequeued(cp);
        cp.where = SCopy::Where::kNone;
        if (cid == 0 && !reqs[id].done) {
          ++res.churn.handoff_forwarded;
          dispatch(id, 0, reqs[id].chain[reqs[id].chain_pos]);
        }
      }
    }
    reps[r].state = SReplica::St::kParked;
    return true;
  };

  const auto apply_churn = [&](const fault::FaultEvent& e) {
    switch (e.kind) {
      case fault::FaultKind::kShardJoin:
        do_shard_join();
        break;
      case fault::FaultKind::kShardLeave:
        do_shard_leave(e.replica);  // shard index (see FaultEvent)
        break;
      case fault::FaultKind::kReplicaAdd: {
        for (std::uint32_t i = 0; i < e.replica; ++i) {  // count (see doc)
          std::vector<SliceMove> moves;
          const std::uint32_t r = frontend.add_replica(&moves);
          ++res.churn.replica_adds;
          apply_moves(moves);
          // Scale-out pays the real platform cold start before serving.
          reps[r].state = SReplica::St::kBooting;
          ++shards[reps[r].shard].booting;
          events.after(model.cold_start_ns, [&, r] { boot_done(r); });
        }
        break;
      }
      case fault::FaultKind::kReplicaRemove:
        do_replica_remove(e.replica);
        break;
      default:
        break;
    }
  };

  // --- elastic controller ----------------------------------------------------
  // Closed-loop scaling: the controller observes the fabric's own signals
  // each tick and originates the same membership events the FaultPlan
  // scripts, through the shared do_* bodies above. Joins are fault-
  // tolerant and zero-loss by construction: a joiner boots and attests
  // entirely *outside* the topology and only a fully verified one touches
  // the ring, so a crash mid-cold-start or a failed join re-attest strands
  // nothing — it is detected when the join deadline passes, charged, and
  // retried with backoff until the attempt budget runs out.
  std::unique_ptr<ElasticController> ctrl;
  if (elastic_on) ctrl = std::make_unique<ElasticController>(cfg_.elastic);
  const auto crash_windows = cfg_.faults.join_crashes();
  const auto outage_windows = cfg_.faults.attest_outages();
  std::vector<std::uint32_t> elastic_added;   ///< joiners on the ring
  std::vector<std::uint32_t> elastic_shards;  ///< controller-added shards
  int joins_in_flight = 0;
  int joiner_seq = 0;

  std::function<void(int, int)> join_attempt;

  const auto join_complete = [&] {
    std::vector<SliceMove> moves;
    const std::uint32_t r = frontend.add_replica(&moves);
    ++res.churn.replica_adds;
    ++res.elastic.joins_completed;
    elastic_added.push_back(r);
    // Warm *before* the ownership move: the joiner booted and attested
    // outside the topology, so apply_moves transfers it as live capacity.
    reps[r].state = SReplica::St::kWarm;
    apply_moves(moves);
    --joins_in_flight;
  };

  const auto join_failed = [&](int j, int attempt) {
    if (attempt >= cfg_.elastic.join_max_attempts) {
      ++res.elastic.joins_abandoned;
      ctrl->on_join_abandoned();
      --joins_in_flight;
      return;
    }
    ++res.elastic.join_retries;
    const sim::Ns backoff =
        cfg_.elastic.join_backoff_ns *
        std::pow(cfg_.elastic.join_backoff_mult, attempt - 1);
    events.after(backoff, [&, j, attempt] { join_attempt(j, attempt + 1); });
  };

  join_attempt = [&](int j, int attempt) {
    // A cold start begun inside a join-crash window dies mid-boot. The
    // control plane only finds out when the join deadline (the full cold
    // start) passes — the crash is charged in full, never short-circuited.
    bool crashed = false;
    for (const auto& w : crash_windows)
      if (clock.now() >= w.first && clock.now() < w.second) {
        crashed = true;
        break;
      }
    if (crashed) {
      events.after(model.cold_start_ns, [&, j, attempt] {
        ++res.elastic.join_crashes;
        join_failed(j, attempt);
      });
      return;
    }
    events.after(model.cold_start_ns, [&, j, attempt] {
      // Join-time re-attestation. Normal fleets have no evidence to
      // verify; secure fleets verify through the live service when it is
      // wired, else pay the flat per-attempt cost — failing the attempt
      // when an attest outage overlaps it.
      if (!cfg_.secure) {
        join_complete();
        return;
      }
      if (vsvc) {
        // The joiner's evidence is its own subject, distinct from the
        // shard subjects 0..S-1 the cross-admissions verify — a retry
        // must re-verify, not resume a ticket it never earned.
        vsvc->verify(
            static_cast<std::uint64_t>(S) + static_cast<std::uint64_t>(j),
            /*tcb=*/0, /*deadline=*/0,
            [&, j, attempt](const attest::svc::VerifyOutcome& out) {
              if (out.ok()) {
                join_complete();
                return;
              }
              ++res.elastic.join_attest_failures;
              join_failed(j, attempt);
            });
        return;
      }
      const sim::Ns a = std::max<sim::Ns>(cfg_.elastic.join_attest_ns, 0.0);
      const sim::Ns t0 = clock.now();
      bool fail = false;
      for (const auto& w : outage_windows)
        if (t0 < w.second && t0 + a > w.first) {
          fail = true;
          break;
        }
      events.after(a, [&, j, attempt, fail] {
        if (fail) {
          ++res.elastic.join_attest_failures;
          join_failed(j, attempt);
        } else {
          join_complete();
        }
      });
    });
  };

  const auto elastic_scale_in = [&] {
    // Scale-in only ever targets controller-added capacity, newest first;
    // the base fleet is the controller's floor.
    std::uint32_t victim = SliceMove::kUnowned;
    for (auto it = elastic_added.rbegin(); it != elastic_added.rend(); ++it)
      if (frontend.replica_live(*it)) {
        victim = *it;
        break;
      }
    bool abort = victim == SliceMove::kUnowned;
    if (!abort) {
      const std::uint32_t os = reps[victim].shard;
      // The drain target must be healthy: a breaker-open replica is
      // already failing its work, and removing it would re-dispatch its
      // queue into a shard that just proved it cannot absorb it.
      abort = os == SliceMove::kUnowned ||
              shards[os].breakers[victim].state() !=
                  fault::BreakerState::kClosed;
    }
    if (abort || !do_replica_remove(victim)) {
      ++res.elastic.scale_in_aborts;
      ctrl->on_scale_in_aborted();
      return;
    }
    ++res.elastic.scale_ins;
  };

  const auto elastic_shard_retire = [&] {
    std::uint32_t victim = SliceMove::kUnowned;
    for (auto it = elastic_shards.rbegin(); it != elastic_shards.rend();
         ++it)
      if (frontend.shard_live(*it)) {
        victim = *it;
        break;
      }
    if (victim == SliceMove::kUnowned || !do_shard_leave(victim)) {
      ctrl->on_shard_retire_aborted();
      return;
    }
    ++res.elastic.shard_retires;
  };

  std::uint64_t e_last_offered = 0;
  std::uint64_t e_last_rejected = 0;
  const double model_rps =
      model.replica_capacity_rps(cfg_.queue.concurrency);
  std::function<void()> etick = [&] {
    ++res.elastic.ticks;
    int fleet_warm = 0;
    int fleet_booting = 0;
    for (const ShardState& sh : shards) {
      fleet_warm += sh.warm;
      fleet_booting += sh.booting;
    }
    std::uint64_t queued = 0;
    std::uint64_t in_service = 0;
    for (const SReplica& rep : reps) {
      queued += rep.queue.queued();
      in_service += static_cast<std::uint64_t>(rep.queue.in_service());
    }
    res.elastic.warm_replica_seconds +=
        static_cast<double>(fleet_warm) * (cfg_.elastic.tick_ns / sim::kSec);
    // Capacity per warm replica: the model's value until enough real
    // completions exist, then the fleetwide learned EWMA service time —
    // the same signal the overload guard trusts.
    double per_rps = model_rps;
    double wsvc = 0;
    std::uint64_t wn = 0;
    for (const ShardState& sh : shards) {
      if (sh.ewma_samples == 0) continue;
      wsvc += sh.ewma_service * static_cast<double>(sh.ewma_samples);
      wn += sh.ewma_samples;
    }
    if (wn >= 64 && wsvc > 0)
      per_rps = static_cast<double>(cfg_.queue.concurrency) * sim::kSec *
                static_cast<double>(wn) / wsvc;
    // Dedupe the per-tick sample (satellite): arrivals_delta derives from
    // res.offered, which counts each request once at client arrival — a
    // hedge copy never touches it — and the queue-depth signal subtracts
    // the fleet's queued speculative copies, so a hedge storm can neither
    // inflate the demand estimate nor hold off scale-in.
    if (spec) queued -= std::min(queued, hedge_q_fleet);
    ElasticSignals sig;
    sig.now = clock.now();
    sig.arrivals_delta = res.offered - e_last_offered;
    e_last_offered = res.offered;
    sig.rejected_delta = res.rejected - e_last_rejected;
    e_last_rejected = res.rejected;
    sig.queued = queued;
    sig.in_service = in_service;
    sig.warm = fleet_warm;
    sig.pending = fleet_booting + joins_in_flight;
    sig.per_replica_rps = per_rps;
    const ElasticDecision d = ctrl->evaluate(sig);
    // Gateway shards join instantly (the admission plane is conventional
    // infrastructure, no TEE boot), so new joiners slice onto them.
    for (int i = 0; i < d.add_shards; ++i) {
      ++res.elastic.shard_orders;
      elastic_shards.push_back(do_shard_join());
      ++res.elastic.shard_joins_completed;
    }
    for (int i = 0; i < d.add_replicas; ++i) {
      ++res.elastic.replica_orders;
      ++joins_in_flight;
      join_attempt(joiner_seq++, 1);
    }
    if (d.remove_replicas > 0) elastic_scale_in();
    if (d.remove_shards > 0) elastic_shard_retire();
    if (issued < cfg_.requests || backlog_total() > 0 ||
        joins_in_flight > 0)
      events.after(cfg_.elastic.tick_ns, Action::ref(etick));
  };

  // --- fault replay ----------------------------------------------------------
  // Every link window — host- and replica-addressed alike — replays onto
  // the fabric at its boundaries; churn events fire their topology handler
  // at the scheduled instant. There is no replica special-casing here.
  if (chaos) {
    for (const fault::FaultEvent& e : cfg_.faults.events()) {
      switch (e.kind) {
        case fault::FaultKind::kLinkSlow:
        case fault::FaultKind::kLinkDown:
          events.at(e.at_ns, [&] {
            ++windows_active;
            driver.advance(clock.now());
          });
          events.at(e.at_ns + e.duration_ns, [&] {
            --windows_active;
            driver.advance(clock.now());
          });
          break;
        case fault::FaultKind::kShardJoin:
        case fault::FaultKind::kShardLeave:
        case fault::FaultKind::kReplicaAdd:
        case fault::FaultKind::kReplicaRemove:
          events.at(e.at_ns, [&, e] { apply_churn(e); });
          break;
        default:
          break;
      }
    }
    events.after(cfg_.probe_interval_ns, Action::ref(probe));
  }
  events.after(cfg_.scaler.tick_ns, Action::ref(tick));
  if (elastic_on) events.after(cfg_.elastic.tick_ns, Action::ref(etick));
  // Scheduled rate changes (flash-crowd ramps, oscillating load): gaps
  // drawn after the step use the new rate; the arrival RNG stream is
  // untouched, so stepped runs stay seed-reproducible.
  for (const RateStep& st : cfg_.rate_steps)
    events.at(st.at_ns, [&, st] { arrivals.set_rate(st.rate_rps); });
  if (cfg_.requests > 0)
    events.after(arrivals.next_gap(), Action::ref(on_arrival));

  events.run();

  res.makespan_ns = clock.now();
  if (ctrl) {
    for (const ElasticSample& s : ctrl->trace()) {
      res.elastic.suppressed_cooldown += s.suppressed_cooldown;
      res.elastic.suppressed_governor += s.suppressed_governor;
    }
    res.elastic_trace = ctrl->trace();
  }
  for (int s = 0; s < frontend.shards(); ++s) {
    ShardState& sh = shards[static_cast<std::size_t>(s)];
    for (const fault::CircuitBreaker& br : sh.breakers)
      sh.stats.breaker_trips += br.times_opened();
    sh.stats.scaler_trace = sh.scaler.trace();
    res.shards.push_back(std::move(sh.stats));
  }
  if (vsvc) {
    res.attest.full = vsvc->full_verifies();
    res.attest.evtpm = vsvc->evtpm_verifies();
    res.attest.batches = vsvc->batches();
    res.attest.batched = vsvc->batched_requests();
    res.attest.fetches = vsvc->collateral_fetches();
    res.attest.fetch_failures = vsvc->fetch_failures();
    res.attest.cache_hits = vsvc->cache().hits();
    res.attest.cache_misses = vsvc->cache().misses();
    res.attest.cache_stale = vsvc->cache().stale();
    res.attest.ticket_mints = vsvc->tickets().minted();
    res.attest.ticket_resumes = vsvc->tickets().resumed();
    res.attest.ticket_expired = vsvc->tickets().expired();
    res.attest.ticket_invalidated = vsvc->tickets().invalidated_total();
    res.attest.deadline_giveups = vsvc->deadline_giveups();
    res.attest.queue_rejects = vsvc->queue_rejects();
    res.attest.revocations = vsvc->revocations();
    res.attest.tcb_recoveries = vsvc->cache().tcb_recoveries();
  }

  // --- observability ---------------------------------------------------------
  if (cfg_.tracer && cfg_.tracer->enabled()) {
    obs::Trace& fleet = cfg_.tracer->start_trace(
        "shard-fabric/" + cfg_.platform +
        (cfg_.secure ? "/secure" : "/normal"));
    for (const ShardStats& st : res.shards) {
      const std::uint32_t sp =
          fleet.add_span(obs::Category::kShard, "shard.run", 0,
                         res.makespan_ns);
      fleet.set_attr(sp, "host", st.host);
      fleet.set_attr(sp, "slice", std::to_string(st.slice));
      fleet.set_attr(sp, "admitted", std::to_string(st.admitted));
      fleet.set_attr(sp, "cross_admitted",
                     std::to_string(st.cross_admitted));
      fleet.set_attr(sp, "shed", std::to_string(st.shed));
      fleet.set_attr(sp, "completed", std::to_string(st.completed));
      fleet.set_attr(sp, "breaker_trips",
                     std::to_string(st.breaker_trips));
    }
    if (vsvc) {
      // Attribute the service in the fleet timeline: one summary span
      // carrying the cache/ticket split every crossing paid into.
      const std::uint32_t sp = fleet.add_span(
          obs::Category::kAttest, "attest_svc.verify", 0, res.makespan_ns);
      fleet.set_attr(sp, "mode", std::string(to_string(cfg_.attest_svc.mode)));
      fleet.set_attr(sp, "full", std::to_string(res.attest.full));
      fleet.set_attr(sp, "evtpm", std::to_string(res.attest.evtpm));
      fleet.set_attr(sp, "ticket_resumes",
                     std::to_string(res.attest.ticket_resumes));
      fleet.set_attr(sp, "cache_hits", std::to_string(res.attest.cache_hits));
      fleet.set_attr(sp, "cache_misses",
                     std::to_string(res.attest.cache_misses));
      fleet.set_attr(sp, "batches", std::to_string(res.attest.batches));
      fleet.set_attr(sp, "deadline_giveups",
                     std::to_string(res.attest.deadline_giveups));
      vsvc->publish(cfg_.tracer->registry());
    }
    if (spec) {
      // One fleet-timeline span per run summarizing the speculative
      // hedging economics: what fired, what won, what each interlock
      // declined, and the warm/cold split of the crossings' trust costs.
      const std::uint32_t sp = fleet.add_span(
          obs::Category::kHedge, "hedge.speculative", 0, res.makespan_ns);
      fleet.set_attr(sp, "fired", std::to_string(res.hedging.fired));
      fleet.set_attr(sp, "cross", std::to_string(res.hedging.cross));
      fleet.set_attr(sp, "wins", std::to_string(res.hedging.wins));
      fleet.set_attr(sp, "cross_wins",
                     std::to_string(res.hedging.cross_wins));
      fleet.set_attr(sp, "cancelled_queue",
                     std::to_string(res.hedging.cancelled_queue));
      fleet.set_attr(sp, "cancelled_inflight",
                     std::to_string(res.hedging.cancelled_inflight));
      fleet.set_attr(sp, "declined_budget",
                     std::to_string(res.hedging.declined_budget));
      fleet.set_attr(sp, "declined_breaker",
                     std::to_string(res.hedging.declined_breaker));
      fleet.set_attr(sp, "declined_degraded",
                     std::to_string(res.hedging.declined_degraded));
      fleet.set_attr(sp, "declined_cost",
                     std::to_string(res.hedging.declined_cost));
      fleet.set_attr(sp, "ticket_resumes",
                     std::to_string(res.hedging.ticket_resumes));
      fleet.set_attr(sp, "full_verifies",
                     std::to_string(res.hedging.full_verifies));
      fleet.set_attr(sp, "attest_failures",
                     std::to_string(res.hedging.attest_failures));
    }
    obs::Registry& reg = cfg_.tracer->registry();
    reg.counter("shard.offered") += res.offered;
    reg.counter("shard.completed") += res.completed;
    reg.counter("shard.rejected") += res.rejected;
    reg.counter("shard.failed") += res.failed;
    reg.counter("shard.cross_failovers") += res.cross_failovers;
    reg.counter("shard.shed") += res.shed;
    reg.counter("shard.responses_lost") += res.responses_lost;
    if (churn) {
      reg.counter("shard.churn.shard_joins") += res.churn.shard_joins;
      reg.counter("shard.churn.shard_leaves") += res.churn.shard_leaves;
      reg.counter("shard.churn.replica_adds") += res.churn.replica_adds;
      reg.counter("shard.churn.replica_removes") +=
          res.churn.replica_removes;
      reg.counter("shard.churn.replicas_moved") += res.churn.replicas_moved;
      reg.counter("shard.churn.handoff_forwarded") +=
          res.churn.handoff_forwarded;
      reg.counter("shard.churn.handoff_drained") +=
          res.churn.handoff_drained;
    }
    if (cfg_.shard.early_reject)
      reg.counter("shard.early_rejected") += res.churn.early_rejected;
    if (spec) {
      reg.counter("shard.hedge.fired") += res.hedging.fired;
      reg.counter("shard.hedge.cross") += res.hedging.cross;
      reg.counter("shard.hedge.wins") += res.hedging.wins;
      reg.counter("shard.hedge.cross_wins") += res.hedging.cross_wins;
      reg.counter("shard.hedge.cancelled_queue") +=
          res.hedging.cancelled_queue;
      reg.counter("shard.hedge.cancelled_inflight") +=
          res.hedging.cancelled_inflight;
      reg.counter("shard.hedge.declined_budget") +=
          res.hedging.declined_budget;
      reg.counter("shard.hedge.declined_breaker") +=
          res.hedging.declined_breaker;
      reg.counter("shard.hedge.declined_degraded") +=
          res.hedging.declined_degraded;
      reg.counter("shard.hedge.declined_cost") += res.hedging.declined_cost;
      reg.counter("shard.hedge.ticket_resumes") +=
          res.hedging.ticket_resumes;
      reg.counter("shard.hedge.full_verifies") +=
          res.hedging.full_verifies;
      reg.counter("shard.hedge.attest_failures") +=
          res.hedging.attest_failures;
    }
    if (elastic_on) {
      reg.counter("shard.elastic.replica_orders") +=
          res.elastic.replica_orders;
      reg.counter("shard.elastic.joins_completed") +=
          res.elastic.joins_completed;
      reg.counter("shard.elastic.join_crashes") += res.elastic.join_crashes;
      reg.counter("shard.elastic.join_attest_failures") +=
          res.elastic.join_attest_failures;
      reg.counter("shard.elastic.joins_abandoned") +=
          res.elastic.joins_abandoned;
      reg.counter("shard.elastic.scale_ins") += res.elastic.scale_ins;
      reg.counter("shard.elastic.scale_in_aborts") +=
          res.elastic.scale_in_aborts;
    }
    reg.histogram("shard.latency_ns").merge(res.latency);
  }
  return res;
}

}  // namespace confbench::sched

// Small-buffer event closure for the discrete-event engine.
//
// std::function<void()> gives every scheduled event a 16-byte inline buffer
// (libstdc++), so the cluster handlers — which capture half a dozen
// references plus ids — heap-allocate on every schedule and free on every
// fire. At millions of events per trial that churn dominates the engine.
//
// Action fixes the two common cases:
//   - a 64-byte inline buffer fits every handler the cluster schedules;
//     larger closures spill into the queue's per-trial Arena (bump
//     allocation, memory reclaimed wholesale when the trial ends);
//   - Action::ref() wraps a long-lived callable (the probe/tick/arrival
//     chains that reschedule themselves every interval) by reference, so a
//     recurring event costs zero copies of its closure.
//
// Move-only, like the events it carries.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/arena.h"

namespace confbench::sched {

class Action {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  Action() = default;

  /// Wraps any void() callable; spills to the heap when it outgrows the
  /// inline buffer.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Action> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  Action(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f), nullptr);
  }

  /// Same, but oversized closures spill into `arena` instead of the heap
  /// (destructors still run at invoke/destroy; memory returns with the
  /// arena). Used by EventQueue so trial teardown frees all spills at once.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Action> &&
                std::is_invocable_v<std::remove_cvref_t<F>&>>>
  Action(F&& f, sim::Arena& arena) {
    emplace(std::forward<F>(f), &arena);
  }

  /// Non-owning view of a long-lived callable. The caller guarantees `f`
  /// outlives every scheduled fire — the recurring-chain contract.
  template <typename F>
  static Action ref(F& f) {
    Action a;
    F* p = &f;
    std::memcpy(a.buf_, &p, sizeof(p));
    a.ops_ = &RefOps<F>::ops;
    return a;
  }

  Action(Action&& o) noexcept { move_from(o); }
  Action& operator=(Action&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;
  ~Action() { destroy(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct into dst from src and destroy src's payload.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename D>
  struct InlineOps {
    static void invoke(void* s) { (*static_cast<D*>(s))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* s) { static_cast<D*>(s)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  static D* loaded(void* s) {
    D* p;
    std::memcpy(&p, s, sizeof(p));
    return p;
  }
  static void relocate_ptr(void* dst, void* src) {
    std::memcpy(dst, src, sizeof(void*));
  }

  template <typename D>
  struct HeapOps {
    static void invoke(void* s) { (*loaded<D>(s))(); }
    static void destroy(void* s) { delete loaded<D>(s); }
    static constexpr Ops ops{&invoke, &relocate_ptr, &destroy};
  };

  template <typename D>
  struct ArenaOps {
    static void invoke(void* s) { (*loaded<D>(s))(); }
    // Destructor only; the arena reclaims the bytes wholesale.
    static void destroy(void* s) { loaded<D>(s)->~D(); }
    static constexpr Ops ops{&invoke, &relocate_ptr, &destroy};
  };

  template <typename F>
  struct RefOps {
    static void invoke(void* s) { (*loaded<F>(s))(); }
    static void destroy(void*) {}
    static constexpr Ops ops{&invoke, &relocate_ptr, &destroy};
  };

  template <typename F>
  void emplace(F&& f, sim::Arena* arena) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else if (arena != nullptr) {
      void* mem = arena->allocate(sizeof(D), alignof(D));
      D* p = ::new (mem) D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &ArenaOps<D>::ops;
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(Action& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) ops_->relocate(buf_, o.buf_);
    o.ops_ = nullptr;
  }
  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace confbench::sched

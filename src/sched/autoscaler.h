// Warm-pool autoscaler with TEE-specific cold starts.
//
// The autoscaler keeps between `min_warm` and `max_replicas` VM replicas
// warm. Every `tick_ns` of virtual time it looks at fleet utilization
// (in-service requests over warm capacity) and the queued backlog and
// decides to boot parked replicas or park idle warm ones. A booted replica
// only becomes schedulable after its platform's cold start elapses — and
// cold starts differ mechanically per TEE: confidential VMs pay initial
// memory acceptance / RMP population / realm delegation on top of firmware
// and kernel boot (vm::GuestVm::boot), so a TDX or CCA fleet reacts to a
// load spike more slowly than a plain-KVM fleet. That asymmetry is exactly
// what the cluster experiments measure.
//
// The class is pure decision logic (no event wiring): the experiment loop
// feeds it observations and applies the returned delta, which keeps the
// policy unit-testable and the event schedule deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace confbench::sched {

struct AutoscalerConfig {
  int min_warm = 1;
  int max_replicas = 4;
  /// Boot more capacity above this utilization (or any sustained queue).
  double scale_up_utilization = 0.85;
  /// Park a replica below this utilization...
  double scale_down_utilization = 0.25;
  /// ...but only after this many consecutive low-utilization ticks.
  int scale_down_patience = 4;
  sim::Ns tick_ns = 50 * sim::kMs;
  /// Platform cold start (vm::GuestVm::boot of the target platform/mode);
  /// set by the experiment, consumed by its event loop.
  sim::Ns cold_start_ns = 2.2 * sim::kSec;
};

/// One tick's observation + decision, kept for traces/CSV export.
struct AutoscalerSample {
  sim::Ns t = 0;
  int warm = 0;
  int booting = 0;
  std::uint64_t in_service = 0;
  std::uint64_t queued = 0;
  /// Admission rejections since the previous tick — recorded so a scale-up
  /// can be attributed to rejection pressure vs utilization vs backlog.
  std::uint64_t rejected_delta = 0;
  double utilization = 0;
  int decision = 0;  ///< +k: boot k replicas, -k: park k, 0: hold
};

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig cfg) : cfg_(cfg) {}

  /// One policy tick. Returns the replica-count delta to apply: positive =
  /// start booting that many parked replicas, negative = park that many
  /// idle warm ones. Accounts for capacity already booting so a slow
  /// (confidential) cold start does not trigger a boot storm.
  /// `rejected_delta` is the number of admission rejections since the last
  /// tick: with a zero-warm pool every request is rejected rather than
  /// queued, so rejections are the only scale-up signal a cold fleet emits.
  [[nodiscard]] int evaluate(int warm, int booting, std::uint64_t in_service,
                             std::uint64_t queued, int concurrency_per_vm,
                             sim::Ns now, std::uint64_t rejected_delta = 0);

  /// Live-churn resize: re-clamps the warm band to the shard's current
  /// slice after a handoff moves members in or out. Also restarts the
  /// scale-down patience: low-utilization ticks accumulated against the
  /// *old* band must not carry over, or a shard could park a replica one
  /// tick after a handoff shrank its slice — utilization against the new
  /// band has not been low for even one full tick yet.
  void set_limits(int min_warm, int max_replicas) {
    cfg_.min_warm = min_warm;
    cfg_.max_replicas = max_replicas;
    low_ticks_ = 0;
  }

  [[nodiscard]] const AutoscalerConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<AutoscalerSample>& trace() const {
    return trace_;
  }

 private:
  AutoscalerConfig cfg_;
  int low_ticks_ = 0;
  std::vector<AutoscalerSample> trace_;
};

}  // namespace confbench::sched

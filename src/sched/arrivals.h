// Open-loop arrival generators.
//
// An open-loop load generator issues requests on its own schedule,
// independent of how the system keeps up — the only honest way to measure
// tail latency under load (closed-loop clients self-throttle and hide the
// queueing blow-up; coordinated omission). Two processes are provided:
//
//   kPoisson    memoryless arrivals at `rate_rps` (exponential gaps drawn
//               from a sim::Rng, so the trace is seed-reproducible)
//   kFixedRate  perfectly paced arrivals every 1/rate_rps seconds
//
// Closed-loop load (N clients, think time) is a property of the experiment
// loop, not of the gap distribution: see ClusterConfig::closed_loop_clients.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/rng.h"
#include "sim/time.h"

namespace confbench::sched {

enum class ArrivalKind : std::uint8_t { kPoisson, kFixedRate };

std::string_view to_string(ArrivalKind k);

class ArrivalProcess {
 public:
  /// `rate_rps` must be > 0 (requests per virtual second).
  ArrivalProcess(ArrivalKind kind, double rate_rps, std::uint64_t seed);

  /// The gap to the next arrival, in virtual nanoseconds.
  [[nodiscard]] sim::Ns next_gap();

  /// Live rate change (flash-crowd ramps, oscillating load): gaps drawn
  /// after the change use the new rate; the RNG stream is untouched, so a
  /// run with rate steps stays seed-reproducible. Throws on rate <= 0.
  void set_rate(double rate_rps);

  [[nodiscard]] ArrivalKind kind() const { return kind_; }
  [[nodiscard]] double rate_rps() const { return rate_rps_; }

 private:
  ArrivalKind kind_;
  double rate_rps_;
  sim::Rng rng_;
};

}  // namespace confbench::sched

// Cluster-scale load experiments over the ConfBench deployment.
//
// The paper's evaluation submits one invocation at a time; this runner
// measures the *throughput and tail-latency* face of the secure-vs-normal
// trade-off. It first calibrates a per-request service model by sending
// probe invocations through the real gateway -> host-agent -> launcher
// path (so the model inherits every platform cost mechanism), then drives
// millions of simulated requests through a deterministic discrete-event
// simulation: open-loop Poisson/fixed-rate (or closed-loop) arrivals,
// least-loaded placement over a core::TeePool of VM replicas, per-VM
// concurrency-limited bounded queues with 429-style admission control, and
// a warm-pool autoscaler whose cold starts come from vm::GuestVm::boot —
// so TDX, SEV-SNP and CCA fleets scale up at mechanically different speeds.
//
// The service model splits each request into a *parallel* portion (compute
// and memory work, one per vCPU worker) and a *serialized* portion (the
// swiotlb bounce-buffer path on confidential VMs, which funnels all DMA of
// a VM through a shared slot-limited buffer pool): under concurrency the
// serialized portion queues per VM, which is why I/O-heavy secure workloads
// fall off a throughput cliff that CPU-bound ones never see.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/confbench.h"
#include "metrics/histogram.h"
#include "obs/trace.h"
#include "sched/arrivals.h"
#include "sched/autoscaler.h"
#include "sched/event_queue.h"
#include "sched/replica_queue.h"
#include "sim/time.h"

namespace confbench::sched {

/// Per-request service-time model, calibrated through the real invocation
/// path (gateway + HTTP + launcher + workload + platform cost tables).
struct ServiceModel {
  sim::Ns parallel_ns = 1 * sim::kMs;  ///< mean per-request parallel work
  sim::Ns serialized_ns = 0;  ///< mean per-request serialized (bounce) work
  double jitter_sigma = 0.02; ///< lognormal per-request variation
  sim::Ns cold_start_ns = 2.2 * sim::kSec;  ///< VM boot on this platform/mode
  /// Concurrent copy streams through the per-VM swiotlb pool. Copies
  /// through distinct slots overlap; contention appears once in-flight
  /// requests exceed the slot count, which is what makes bounce-buffer
  /// overhead *grow with offered load* rather than stay a fixed tax. The
  /// default is deliberately below QueueConfig::concurrency: the shared
  /// pool is sized for memory, not for peak request parallelism.
  int bounce_slots = 4;

  [[nodiscard]] sim::Ns total_ns() const {
    return parallel_ns + serialized_ns;
  }

  /// Sustainable requests/sec of one replica with `concurrency` workers:
  /// the parallel portion scales with workers, the serialized portion only
  /// with the (typically smaller) bounce-buffer slot count.
  [[nodiscard]] double replica_capacity_rps(int concurrency) const;

  /// Probes the deployment with real invocations and derives the model.
  /// The serialized share is the measured I/O fraction of the run, applied
  /// only where the platform actually routes DMA through bounce buffers.
  [[nodiscard]] static ServiceModel calibrate(core::ConfBench& system,
                                              const std::string& function,
                                              const std::string& language,
                                              const std::string& platform,
                                              bool secure, int probes = 4);
};

struct ClusterConfig {
  std::string function = "iostress";
  std::string language = "go";
  std::string platform = "tdx";
  bool secure = true;

  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_rps = 1000;          ///< open-loop offered load
  std::uint64_t requests = 100000; ///< total requests to issue
  /// First N requests count toward offered/completed/throughput but are
  /// excluded from the latency and queue-wait histograms, so tail stats
  /// reflect steady state rather than the autoscaler's ramp-up transient.
  std::uint64_t warmup_requests = 0;
  std::uint64_t seed = 1;

  /// Closed-loop mode when > 0: this many clients, each issuing its next
  /// request `think_ns` after the previous one resolves; rate_rps ignored.
  int closed_loop_clients = 0;
  sim::Ns think_ns = 1 * sim::kMs;

  QueueConfig queue;        ///< per-replica limits
  AutoscalerConfig scaler;  ///< fleet sizing (cold_start_ns comes from model)
  int calibration_probes = 4;

  /// When set, the run records the `trace_tail` slowest steady-state
  /// requests as span trees (queue wait / service / bounce wait / bounce)
  /// plus one fleet trace (cold-start spans, autoscaler decisions), and
  /// publishes run aggregates into the tracer's metrics registry. Null
  /// disables all of it; results are bit-identical either way.
  obs::Tracer* tracer = nullptr;
  int trace_tail = 8;
};

struct ClusterResult {
  ClusterConfig cfg;
  ServiceModel model;
  metrics::LogHistogram latency;     ///< sojourn time (wait + service)
  metrics::LogHistogram queue_wait;  ///< admission -> service start
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< 429-style admission rejections
  sim::Ns makespan_ns = 0;
  int peak_warm = 0;
  std::vector<AutoscalerSample> scaler_trace;

  [[nodiscard]] double throughput_rps() const;
  [[nodiscard]] double reject_rate() const {
    return offered ? static_cast<double>(rejected) /
                         static_cast<double>(offered)
                   : 0.0;
  }
  /// Structured export (metrics::JsonWriter).
  [[nodiscard]] std::string to_json() const;
};

class ClusterExperiment {
 public:
  explicit ClusterExperiment(ClusterConfig cfg) : cfg_(std::move(cfg)) {}

  /// Calibrates through `system`'s real invocation path, then simulates.
  [[nodiscard]] ClusterResult run(core::ConfBench& system) const;

  /// Simulates with an explicit model (tests; pre-calibrated sweeps).
  [[nodiscard]] ClusterResult run_with_model(const ServiceModel& model) const;

  /// Offered load (rps) that saturates the autoscaler's full fleet.
  [[nodiscard]] double fleet_capacity_rps(const ServiceModel& model) const;

 private:
  ClusterConfig cfg_;
};

}  // namespace confbench::sched

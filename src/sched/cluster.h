// Cluster-scale load experiments over the ConfBench deployment.
//
// The paper's evaluation submits one invocation at a time; this runner
// measures the *throughput and tail-latency* face of the secure-vs-normal
// trade-off. It first calibrates a per-request service model by sending
// probe invocations through the real gateway -> host-agent -> launcher
// path (so the model inherits every platform cost mechanism), then drives
// millions of simulated requests through a deterministic discrete-event
// simulation: open-loop Poisson/fixed-rate (or closed-loop) arrivals,
// least-loaded placement over a core::TeePool of VM replicas, per-VM
// concurrency-limited bounded queues with 429-style admission control, and
// a warm-pool autoscaler whose cold starts come from vm::GuestVm::boot —
// so TDX, SEV-SNP and CCA fleets scale up at mechanically different speeds.
//
// The service model splits each request into a *parallel* portion (compute
// and memory work, one per vCPU worker) and a *serialized* portion (the
// swiotlb bounce-buffer path on confidential VMs, which funnels all DMA of
// a VM through a shared slot-limited buffer pool): under concurrency the
// serialized portion queues per VM, which is why I/O-heavy secure workloads
// fall off a throughput cliff that CPU-bound ones never see.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/confbench.h"
#include "fault/breaker.h"
#include "fault/fault.h"
#include "fault/hedge.h"
#include "fault/migrate.h"
#include "fault/outlier.h"
#include "fault/recovery.h"
#include "fault/retry.h"
#include "metrics/histogram.h"
#include "obs/trace.h"
#include "sched/arrivals.h"
#include "sched/autoscaler.h"
#include "sched/event_queue.h"
#include "sched/replica_queue.h"
#include "sim/time.h"

namespace confbench::attest::svc {
class VerifyService;
}

namespace confbench::sched {

/// Per-request service-time model, calibrated through the real invocation
/// path (gateway + HTTP + launcher + workload + platform cost tables).
struct ServiceModel {
  sim::Ns parallel_ns = 1 * sim::kMs;  ///< mean per-request parallel work
  sim::Ns serialized_ns = 0;  ///< mean per-request serialized (bounce) work
  double jitter_sigma = 0.02; ///< lognormal per-request variation
  sim::Ns cold_start_ns = 2.2 * sim::kSec;  ///< VM boot on this platform/mode
  /// Concurrent copy streams through the per-VM swiotlb pool. Copies
  /// through distinct slots overlap; contention appears once in-flight
  /// requests exceed the slot count, which is what makes bounce-buffer
  /// overhead *grow with offered load* rather than stay a fixed tax. The
  /// default is deliberately below QueueConfig::concurrency: the shared
  /// pool is sized for memory, not for peak request parallelism.
  int bounce_slots = 4;

  [[nodiscard]] sim::Ns total_ns() const {
    return parallel_ns + serialized_ns;
  }

  /// Sustainable requests/sec of one replica with `concurrency` workers:
  /// the parallel portion scales with workers, the serialized portion only
  /// with the (typically smaller) bounce-buffer slot count.
  [[nodiscard]] double replica_capacity_rps(int concurrency) const;

  /// Probes the deployment with real invocations and derives the model.
  /// The serialized share is the measured I/O fraction of the run, applied
  /// only where the platform actually routes DMA through bounce buffers.
  [[nodiscard]] static ServiceModel calibrate(core::ConfBench& system,
                                              const std::string& function,
                                              const std::string& language,
                                              const std::string& platform,
                                              bool secure, int probes = 4);
};

/// What the cluster does with a replica whose breaker tripped on *gray*
/// evidence (OutlierDetector flag on a live replica) rather than fail-stop
/// evidence.
enum class DegradeResponse : std::uint8_t {
  kNone,     ///< take it out of rotation until the breaker re-closes
  kReboot,   ///< treat like a crash: kill + cold recovery (boot + attest)
  kMigrate,  ///< planned drain + live-migrate (fault::MigrationPlanner)
};

std::string_view to_string(DegradeResponse r);

struct ClusterConfig {
  std::string function = "iostress";
  std::string language = "go";
  std::string platform = "tdx";
  bool secure = true;

  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_rps = 1000;          ///< open-loop offered load
  std::uint64_t requests = 100000; ///< total requests to issue
  /// First N requests count toward offered/completed/throughput but are
  /// excluded from the latency and queue-wait histograms, so tail stats
  /// reflect steady state rather than the autoscaler's ramp-up transient.
  std::uint64_t warmup_requests = 0;
  std::uint64_t seed = 1;

  /// Closed-loop mode when > 0: this many clients, each issuing its next
  /// request `think_ns` after the previous one resolves; rate_rps ignored.
  int closed_loop_clients = 0;
  sim::Ns think_ns = 1 * sim::kMs;

  QueueConfig queue;        ///< per-replica limits
  AutoscalerConfig scaler;  ///< fleet sizing (cold_start_ns comes from model)
  int calibration_probes = 4;

  /// Chaos schedule. When empty (the default) no fault machinery runs at
  /// all — no health probes, no breakers — and the event stream is
  /// identical to a build without fault injection.
  fault::FaultPlan faults;
  /// Failover retry policy for requests lost to a fault (crash victims and
  /// timed-out dispatches): exponential backoff, budget, attempt cap.
  fault::RetryConfig retry;
  fault::BreakerConfig breaker;  ///< per-replica circuit breaker policy
  sim::Ns probe_interval_ns = 50 * sim::kMs;   ///< health-check period
  sim::Ns detect_timeout_ns = 100 * sim::kMs;  ///< client dispatch timeout
  /// Replica replacement cost. run() measures it through the real
  /// boot + re-attestation path (fault::measure_recovery); run_with_model
  /// falls back to the model's cold start with zero attestation when left
  /// at its all-zero default.
  fault::RecoveryCosts recovery;

  /// Hedged requests: backup dispatch to a second replica once a request
  /// outlives the learned latency quantile. Disabled by default — the
  /// event stream is then bit-identical to a build without hedging.
  fault::HedgeConfig hedge;
  /// Gray-failure detection from per-replica latency EWMAs; feeds the
  /// replica's breaker. Disabled by default.
  fault::OutlierConfig outlier;
  /// Response to a gray-tripped replica (only reachable with
  /// outlier.enabled).
  DegradeResponse degrade_response = DegradeResponse::kNone;
  /// Live-migration costs for DegradeResponse::kMigrate. run() measures
  /// them through the real boot-pair + re-attestation path
  /// (fault::measure_migration) when left at the all-zero default;
  /// run_with_model falls back to fractions of the model's cold start.
  fault::MigrationCosts migration;
  /// Target selection for kMigrate: least-loaded (default) or anti-affinity
  /// against the source's rack. Replica i lives on host "replica-i" in rack
  /// "rack-<i/4>"; candidate load is the peer's current backlog at
  /// detection time. The chosen host lands in MigrationSample::target_host
  /// and in the fleet trace's migration span.
  fault::PlacementPolicy placement = fault::PlacementPolicy::kLeastLoaded;
  /// End-to-end request deadline (0 = none): failover attempts whose next
  /// backoff cannot beat it give up with ErrorCode::kDeadlineExceeded.
  sim::Ns deadline_ns = 0;

  /// Optional shared attestation verification service (non-owning). When
  /// attached, crash-recovery and live-migration re-attestation rounds are
  /// priced through the service's collateral cache — warm collateral skips
  /// the network share and an attestation outage stalls only cache misses —
  /// and the fault hooks fire: a crash or kReboot gray response invalidates
  /// the replica's session ticket via on_reboot, a kMigrate drain via
  /// on_migration. Null (the default) keeps the legacy flat-cost model and
  /// a byte-identical event stream.
  attest::svc::VerifyService* attest_svc = nullptr;

  /// When set, the run records the `trace_tail` slowest steady-state
  /// requests as span trees (queue wait / service / bounce wait / bounce)
  /// plus one fleet trace (cold-start spans, autoscaler decisions), and
  /// publishes run aggregates into the tracer's metrics registry. Null
  /// disables all of it; results are bit-identical either way.
  obs::Tracer* tracer = nullptr;
  int trace_tail = 8;
};

/// One replica's crash -> traffic-readmitted recovery, fully timestamped.
/// The boot/attest sub-intervals are what attribute the secure-vs-normal
/// time-to-recover gap in the fleet trace.
struct RecoverySample {
  std::uint32_t replica = 0;
  sim::Ns crash_ns = 0;         ///< the fault fired
  sim::Ns boot_start_ns = 0;    ///< breaker tripped; replacement boot began
  sim::Ns boot_end_ns = 0;
  sim::Ns attest_start_ns = 0;  ///< == boot_end for normal VMs
  sim::Ns attest_end_ns = 0;
  sim::Ns recovered_ns = 0;     ///< breaker closed; traffic readmitted
  [[nodiscard]] sim::Ns ttr_ns() const { return recovered_ns - crash_ns; }
};

/// One replica's planned live migration, detection to traffic readmitted.
struct MigrationSample {
  std::uint32_t replica = 0;
  std::string target_host;  ///< placement choice (ClusterConfig::placement)
  fault::MigrationSchedule sched;
  sim::Ns readmitted_ns = 0;  ///< breaker closed on the target
  [[nodiscard]] sim::Ns ttr_ns() const {
    return readmitted_ns - sched.detect_ns;
  }
};

struct ClusterResult {
  ClusterConfig cfg;
  ServiceModel model;
  metrics::LogHistogram latency;     ///< sojourn time (wait + service)
  metrics::LogHistogram queue_wait;  ///< admission -> service start
  /// Latency of requests that completed while a fault was active (a crash
  /// unrecovered or a hang/brownout/partition/outage window open) — the
  /// "p99 during fault" the chaos experiments report. Empty without faults.
  metrics::LogHistogram latency_fault;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< 429-style admission rejections
  std::uint64_t failed = 0;    ///< gave up after fault-driven retries
  std::uint64_t retries = 0;   ///< failover re-dispatch attempts
  std::uint64_t failovers = 0; ///< requests that had to leave a replica
  std::uint64_t crashes = 0;   ///< replica crashes applied
  // Hedged-request accounting. Hedges are *copies*, not requests: they
  // never enter offered/completed/rejected/failed, so the accounted()
  // invariant is unchanged by hedging.
  std::uint64_t hedges = 0;          ///< backup dispatches fired
  std::uint64_t hedge_wins = 0;      ///< request completed via its hedge
  std::uint64_t hedge_waste = 0;     ///< losing copies that burned service
  std::uint64_t hedge_cancelled = 0; ///< losing copies cancelled in-queue
  /// Final learned hedge-arm delay (0 when hedging is off) — the
  /// per-fleet threshold criterion (b) of the tail bench compares.
  sim::Ns hedge_threshold_ns = 0;
  std::uint64_t gray_trips = 0;  ///< breaker opens on outlier evidence
  std::uint64_t responses_lost = 0;  ///< asymmetric-partition losses
  /// Terminal failure reasons -> count (typed, never string-matched).
  std::map<std::string, std::uint64_t> failure_codes;
  std::vector<RecoverySample> recoveries;
  std::vector<MigrationSample> migrations;
  sim::Ns makespan_ns = 0;
  int peak_warm = 0;
  std::vector<AutoscalerSample> scaler_trace;

  [[nodiscard]] double throughput_rps() const;
  [[nodiscard]] double reject_rate() const {
    return offered ? static_cast<double>(rejected) /
                         static_cast<double>(offered)
                   : 0.0;
  }
  /// Fraction of offered requests that completed successfully (rejections
  /// and terminal failures both count against availability).
  [[nodiscard]] double availability() const {
    return offered ? static_cast<double>(completed) /
                         static_cast<double>(offered)
                   : 1.0;
  }
  [[nodiscard]] sim::Ns mean_ttr_ns() const;
  [[nodiscard]] sim::Ns mean_migration_ttr_ns() const;
  /// Every offered request must end in exactly one bucket; the chaos tests
  /// assert this "zero lost requests" invariant after every run.
  [[nodiscard]] bool accounted() const {
    return completed + rejected + failed == offered;
  }
  /// Structured export (metrics::JsonWriter).
  [[nodiscard]] std::string to_json() const;
};

class ClusterExperiment {
 public:
  /// A fully-resolved simulation cell: the config with measured recovery/
  /// migration costs patched in, plus the calibrated service model. Two
  /// trials share nothing, which is what makes run_trials() safe to fan
  /// out across threads.
  struct Trial {
    ClusterConfig cfg;
    ServiceModel model;
  };

  explicit ClusterExperiment(ClusterConfig cfg) : cfg_(std::move(cfg)) {}

  /// Calibrates through `system`'s real invocation path, then simulates.
  [[nodiscard]] ClusterResult run(core::ConfBench& system) const;

  /// Simulates with an explicit model (tests; pre-calibrated sweeps).
  [[nodiscard]] ClusterResult run_with_model(const ServiceModel& model) const;

  /// The calibration + cost-measurement half of run(), split out so sweeps
  /// can resolve every cell sequentially (calibration drives the real,
  /// stateful invocation path) and then simulate the cells in parallel.
  /// run(system) == run_trials({prepare(system)})[0].
  [[nodiscard]] Trial prepare(core::ConfBench& system) const;

  /// Simulates independent trials, possibly concurrently, and returns
  /// results in trial order — merged output is byte-identical to running
  /// the same trials sequentially, because each trial's event stream,
  /// RNG streams and histograms are private to it. threads <= 0 means
  /// sim::default_threads(); trials that share cross-trial state (an
  /// attached tracer or attestation service) force a sequential run.
  [[nodiscard]] static std::vector<ClusterResult> run_trials(
      const std::vector<Trial>& trials, int threads = 0);

  /// Offered load (rps) that saturates the autoscaler's full fleet.
  [[nodiscard]] double fleet_capacity_rps(const ServiceModel& model) const;

 private:
  ClusterConfig cfg_;
};

}  // namespace confbench::sched

// Deterministic discrete-event engine over sim::VirtualClock.
//
// The cluster experiments simulate millions of concurrent requests without
// threads: every state change (request arrival, service completion,
// autoscaler tick, VM boot finishing) is an event scheduled at a virtual
// timestamp, and the engine executes events in nondecreasing time order.
//
// Determinism contract: events are totally ordered by (time, seq) where
// `seq` is the monotonically increasing schedule order. Two events at the
// same virtual time therefore run in exactly the order they were scheduled,
// on every run, machine and compiler — there is no hash-order, pointer or
// wall-clock dependence anywhere in the engine. Handlers may schedule
// further events (at or after the current time); scheduling in the past is
// clamped to "now", counted by clamped(), and — when assert_on_past(true)
// is set — trapped by a debug assert, so engine bugs that try to move
// virtual time backwards stop being invisible.
//
// Storage is a two-level hierarchical timer wheel instead of one binary
// heap over all pending events:
//   - L0: 1024 buckets of 2^14 ns (≈16 µs), a ≈16.8 ms near horizon;
//   - L1: 1024 buckets of 2^24 ns (≈16.8 ms), a ≈17 s calendar horizon,
//     redistributed into L0 one bucket at a time as the cursor reaches it;
//   - a min-heap overflow for the far future (cold boots, long probes),
//     refilled into the calendar as the horizon advances.
// Bucket classification truncates the (double) timestamp to integer
// nanoseconds and shifts, so bucket k holds exactly [k·2^b, (k+1)·2^b) with
// no floating-point boundary hazards. The bucket being drained feeds a
// small (time, seq)-ordered ready heap, which restores the total order
// among same-bucket events and absorbs handler-scheduled events that land
// inside the open window — FIFO within a tick is preserved bit-for-bit
// against the reference heap engine (see tests/sched_wheel_test.cc).
//
// at()/after() return a typed EventId; cancel(EventId) and
// reschedule(EventId, Ns) are O(1): the slot is invalidated (generation
// mismatch) and any stale wheel entry is lazily skipped when popped.
// Cancelled events never execute and never advance the clock.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sched/action.h"
#include "sim/arena.h"
#include "sim/clock.h"
#include "sim/time.h"

namespace confbench::sched {

/// Handle to a pending event. Valid until the event fires, is cancelled,
/// or is rescheduled (reschedule returns the replacement handle). A
/// default-constructed EventId is never valid.
struct EventId {
  std::uint32_t slot = 0;
  std::uint64_t seq = 0;
  [[nodiscard]] constexpr bool valid() const { return seq != 0; }
};

class EventQueue {
 public:
  using Action = sched::Action;

  explicit EventQueue(sim::VirtualClock& clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `f` at absolute virtual time `t` (clamped to now()).
  /// Oversized closures spill into the queue's trial arena.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Action>>>
  EventId at(sim::Ns t, F&& f) {
    return schedule(t, Action(std::forward<F>(f), arena_));
  }
  EventId at(sim::Ns t, Action a) { return schedule(t, std::move(a)); }

  /// Schedules at now() + d.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Action>>>
  EventId after(sim::Ns d, F&& f) {
    return schedule(clock_.now() + d, Action(std::forward<F>(f), arena_));
  }
  EventId after(sim::Ns d, Action a) {
    return schedule(clock_.now() + d, std::move(a));
  }

  /// Cancels a pending event in O(1). Returns false when the handle is no
  /// longer valid (already fired, cancelled, or rescheduled). A cancelled
  /// event never runs and never advances the clock.
  bool cancel(EventId id);

  /// Moves a pending event to virtual time `t` (clamped to now()),
  /// keeping its action. The event reorders as if newly scheduled (fresh
  /// seq — it runs after existing events at the same time). Returns the
  /// replacement handle, or an invalid EventId when `id` is stale.
  EventId reschedule(EventId id, sim::Ns t);

  /// Runs the earliest pending event, advancing the clock to its time.
  /// Returns false when no event is pending.
  bool step();

  /// Runs events until the queue drains or `max_events` have run; returns
  /// the number executed. The cap is a runaway guard for tests.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] sim::Ns now() const { return clock_.now(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }
  /// How many at()/after()/reschedule() calls asked for a time in the past
  /// and were clamped to now(). Zero in a well-behaved simulation.
  [[nodiscard]] std::uint64_t clamped() const { return clamped_; }
  /// Debug trap: assert (debug builds) when a schedule lands in the past
  /// instead of silently clamping. Off by default — some callers clamp by
  /// design (e.g. deadlines computed from dispatch timestamps).
  void assert_on_past(bool on) { strict_past_ = on; }

  /// The trial-scoped bump arena backing spilled closures; exposed so
  /// callers can co-locate other per-trial allocations with the queue.
  [[nodiscard]] sim::Arena& arena() { return arena_; }

 private:
  // L0 bucket = 2^14 ns (≈16 µs); L1 bucket = 2^24 ns (≈16.8 ms); both
  // levels have 1024 slots. Shifts operate on the timestamp truncated to
  // integer nanoseconds, so classification is exact.
  static constexpr unsigned kL0Shift = 14;
  static constexpr unsigned kL1Shift = 24;
  static constexpr std::uint64_t kSlots = 1024;
  static constexpr std::uint64_t kMask = kSlots - 1;
  static constexpr std::size_t kWords = kSlots / 64;

  struct Slot {
    Action act;
    sim::Ns time = 0;
    std::uint64_t seq = 0;  ///< 0 = free; matches live wheel entries
  };
  /// What the wheel stores: enough to order and validate without touching
  /// the slot slab until the event actually fires.
  struct Entry {
    sim::Ns time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Max-heap comparator inverted into a min-heap on (time, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct Level {
    std::array<std::vector<Entry>, kSlots> bucket;
    std::array<std::uint64_t, kWords> bits{};
    std::uint64_t count = 0;

    void put(std::uint64_t k, const Entry& e) {
      const std::uint64_t s = k & kMask;
      bucket[s].push_back(e);
      bits[s >> 6] |= std::uint64_t{1} << (s & 63);
      ++count;
    }
  };

  EventId schedule(sim::Ns t, Action a);
  void insert(const Entry& e);
  /// Ensures ready_ holds the next window of entries; false = no entries
  /// anywhere (live or stale).
  bool refill_ready();
  /// First nonempty bucket index ≥ `from` on `lv` (absolute; caller
  /// guarantees lv.count > 0 and the window is ≤ kSlots wide).
  static std::uint64_t next_nonempty(const Level& lv, std::uint64_t from);
  void drain_overflow();
  void ready_push(const Entry& e);

  sim::VirtualClock& clock_;
  sim::Arena arena_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;

  std::vector<Entry> ready_;  ///< (time, seq) min-heap of the open window
  Level l0_, l1_;
  std::vector<Entry> overflow_;  ///< (time, seq) min-heap beyond L1

  // Window bookkeeping (absolute bucket indices; see insert()):
  //   time < ready_end0_·2^14            -> ready_
  //   k0 ∈ [ready_end0_, l0_limit_)      -> L0
  //   k1 ∈ [l1_start_,  l1_limit_)       -> L1
  //   otherwise                          -> overflow_
  std::uint64_t ready_end0_ = 0;
  std::uint64_t l0_limit_ = kSlots;
  std::uint64_t l1_start_ = 1;
  std::uint64_t l1_limit_ = 1 + kSlots;

  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t clamped_ = 0;
  bool strict_past_ = false;
};

}  // namespace confbench::sched

// Deterministic discrete-event engine over sim::VirtualClock.
//
// The cluster experiments simulate millions of concurrent requests without
// threads: every state change (request arrival, service completion,
// autoscaler tick, VM boot finishing) is an event scheduled at a virtual
// timestamp, and the engine executes events in nondecreasing time order.
//
// Determinism contract: events are totally ordered by (time, seq) where
// `seq` is the monotonically increasing schedule order. Two events at the
// same virtual time therefore run in exactly the order they were scheduled,
// on every run, machine and compiler — there is no hash-order, pointer or
// wall-clock dependence anywhere in the engine. Handlers may schedule
// further events (at or after the current time); scheduling in the past is
// clamped to "now" so virtual time never moves backwards.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.h"
#include "sim/time.h"

namespace confbench::sched {

class EventQueue {
 public:
  using Action = std::function<void()>;

  explicit EventQueue(sim::VirtualClock& clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `a` at absolute virtual time `t` (clamped to now()).
  void at(sim::Ns t, Action a);
  /// Schedules `a` at now() + d.
  void after(sim::Ns d, Action a) { at(clock_.now() + d, std::move(a)); }

  /// Runs the earliest pending event, advancing the clock to its time.
  /// Returns false when no event is pending.
  bool step();

  /// Runs events until the queue drains or `max_events` have run; returns
  /// the number executed. The cap is a runaway guard for tests.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] sim::Ns now() const { return clock_.now(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    sim::Ns time;
    std::uint64_t seq;
    Action act;
  };
  /// Max-heap comparator inverted into a min-heap on (time, seq).
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  sim::VirtualClock& clock_;
  std::vector<Event> heap_;  ///< std::push_heap / std::pop_heap managed
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace confbench::sched

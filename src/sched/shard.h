// Sharded gateway fabric: consistent-hash admission over a live topology.
//
// The single-gateway cluster experiments answer "what does a fault cost a
// fleet"; this runner answers the ROADMAP's follow-up: what does losing a
// *gateway* cost, when the control plane itself is sharded? N gateway
// shards each own a consistent-hash slice of the replica fleet (bounded-
// load spill keeps slices balanced even when the ring hashes unevenly), a
// deterministic client-side router hashes every request id onto the shard
// ring, and — unlike ClusterExperiment, which models replica links as
// per-replica flags — every dispatch and completion here traverses a live
// net::Network topology:
//
//     client ── shard-s ── replica-r      (request path, two directed hops)
//     replica-r ── shard-s ── client      (response path)
//
// fault::LinkFaultDriver replays the FaultPlan's link windows (both the
// host-addressed and, via ReplicaAddressing, the replica-addressed form)
// onto that fabric, so subset partitions between shards and replicas are
// *emergent* — a window on client -> shard-0 strands one shard's admission
// path while the other shards keep serving, with no shard-aware special
// case anywhere in the replay.
//
// Failover semantics (the tail costs bench/shard_failover measures):
//   * replica-level failure (black-holed dispatch, lost response): the
//     shard retries on another slice replica under the request's
//     RetryPolicy budget — the *intra-shard* path;
//   * shard-level failure (client cannot reach the shard, or the shard's
//     slice is exhausted): the client re-routes to the next distinct shard
//     on the ring — the *cross-shard* path, which pays a re-admission
//     handshake plus, on secure fleets, a real attestation-verify round
//     (ShardConfig::cross_admit_ns, priced by fault::measure_attest_ns),
//     because the successor shard shares no session state with the home
//     shard and must re-establish trust in the client's claims;
//   * degraded mode: a shard that can reach only a minority of its slice
//     *sheds* incoming admissions to its ring successor instead of
//     black-holing them — shedding advances the request's shard chain
//     without burning a retry attempt, so it is bounded by the shard count
//     and every accepted request still ends in exactly one of
//     completed / rejected / failed (the zero-lost-requests invariant).
//
// Determinism contract: identical to the cluster sim — all randomness
// derives from cfg.seed via named sim::Rng streams, fabric hop checks
// consume no RNG, and event order is (time, seq). Same seed, same bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "attest/svc/verify_service.h"
#include "fault/breaker.h"
#include "fault/fault.h"
#include "fault/hedge.h"
#include "fault/retry.h"
#include "metrics/histogram.h"
#include "obs/trace.h"
#include "sched/arrivals.h"
#include "sched/autoscaler.h"
#include "sched/cluster.h"
#include "sched/elastic.h"
#include "sched/replica_queue.h"
#include "sim/time.h"

namespace confbench::sched {

/// Consistent-hash ring over named nodes. Each node projects `vnodes`
/// points onto the ring (stable_hash of "name#k"), a key is owned by the
/// first point clockwise of its hash, and chain() walks further clockwise
/// collecting *distinct* nodes — the deterministic failover order. Pure
/// data structure: no RNG, no clock.
///
/// Membership is incremental: add_node()/remove_node() insert or erase one
/// node's vnode points, so only the keys adjacent to those points change
/// owner — the classic ~1/N minimal-disruption property the churn bench
/// asserts. Node indices are stable for the ring's lifetime: a removed
/// node's slot stays dead (live(i) == false) and is never reused, so
/// external tables keyed by node index survive churn. Removal erases
/// points by node *index*, never by re-hashing the node's name — two
/// nodes that happen to share a name (or collide) can therefore never
/// orphan each other's vnodes; validate() asserts exactly that invariant.
class HashRing {
 public:
  /// `mix_points` finalizes every vnode point through a splitmix round.
  /// The legacy placement (false) hashes `name#v` with FNV-1a directly,
  /// whose points cluster for short sequential names — individual nodes
  /// can own >2x their fair keyspace share, which breaks the ~1/N
  /// minimal-disruption bound under churn. Mixed placement restores
  /// uniform shares; the legacy default is kept because every existing
  /// experiment's routing (and byte-reproducible output) depends on it.
  HashRing(const std::vector<std::string>& nodes, int vnodes,
           bool mix_points = false);

  /// Index (into the node list) owning `key_hash`.
  [[nodiscard]] std::uint32_t owner(std::uint64_t key_hash) const;

  /// All live nodes in clockwise order starting from owner(key_hash), each
  /// exactly once: chain[0] is the primary, chain[1] the first failover
  /// target, and so on.
  [[nodiscard]] std::vector<std::uint32_t> chain(std::uint64_t key_hash) const;

  /// Inserts a new node's vnode points; keys hashing just before them move
  /// from their old owner (~1/(N+1) of the keyspace in total). Returns the
  /// new node's index. Throws on a duplicate live name.
  std::uint32_t add_node(const std::string& name);

  /// Erases node `idx`'s vnode points: the keys it owned fall through to
  /// the next point clockwise (~1/N of the keyspace), everything else is
  /// untouched. The slot stays dead forever. Throws when `idx` is out of
  /// range, already dead, or the last live node.
  void remove_node(std::uint32_t idx);

  /// Total node slots ever created (live + dead); indices are < nodes().
  [[nodiscard]] std::size_t nodes() const { return names_.size(); }
  [[nodiscard]] std::size_t live_nodes() const { return live_count_; }
  [[nodiscard]] bool live(std::uint32_t idx) const {
    return idx < live_.size() && live_[idx];
  }

  /// Invariant check (tests + debug builds): every live node owns exactly
  /// `vnodes` points, no point references a dead or out-of-range node, and
  /// the point list is sorted. With `repair` any violation is fixed by
  /// rebuilding the point list from the live membership. Returns true when
  /// the ring was already consistent.
  bool validate(bool repair = false);

 private:
  void insert_points(std::uint32_t idx);
  [[nodiscard]] std::uint64_t point_value(const std::string& name,
                                          int v) const;

  int vnodes_;
  bool mix_points_;
  std::size_t live_count_;
  std::vector<std::string> names_;
  std::vector<bool> live_;
  /// (point hash, node index), sorted by hash; ties broken by node index
  /// so the ring is identical on every platform.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

/// Static topology parameters of the sharded admission plane.
struct ShardConfig {
  int shards = 4;
  int vnodes = 64;  ///< ring points per shard (smooths slice imbalance)
  /// Splitmix-finalized vnode placement (HashRing mix_points): required
  /// for the ~1.5/N moved-keys bound under churn, because the legacy FNV
  /// placement clusters points and lets one shard own >2x its fair share.
  /// Default off — legacy experiments route (and reproduce) byte-for-byte
  /// on the unmixed ring.
  bool ring_mix_points = false;
  /// Bounded-load cap: no shard owns more than
  /// ceil(replicas / shards * load_factor) slice members; overflow spills
  /// to the ring successor (the classic consistent-hashing-with-bounded-
  /// loads rule, which is what keeps one hot shard from owning half the
  /// fleet on an unlucky ring).
  double load_factor = 1.25;
  /// A shard reaching strictly fewer than this fraction of its slice over
  /// the fabric sheds new admissions to its successor instead of
  /// dispatching into a mostly-partitioned slice.
  double degraded_min_reachable = 0.5;
  /// One-way latency of each fabric hop (client->shard, shard->replica,
  /// and the reverse hops). Slow-link windows multiply it.
  sim::Ns hop_ns = 100 * sim::kUs;
  /// Session re-establishment when a request is admitted by a shard other
  /// than its home shard (TLS-style handshake; paid secure and normal).
  sim::Ns handshake_ns = 200 * sim::kUs;
  /// Extra cross-admission cost on *secure* fleets: the successor shard
  /// re-verifies the fleet attestation evidence before accepting traffic
  /// for a slice it does not own (bench: fault::measure_attest_ns, which
  /// is PCS-bound on TDX and free on CCA). 0 = no TEE cost.
  sim::Ns cross_admit_ns = 0;

  // --- live churn / handoff (FaultPlan shard_join/shard_leave/...) ---
  /// Re-attestation a slice handoff pays per forwarded request on *secure*
  /// fleets when the verification service is off: the departing and
  /// receiving owners already share fabric trust state, so this is the
  /// warm-ticket resumption check (attest::svc::CostModel::ticket_check_ns),
  /// not a full round. With ShardedConfig::attest_svc enabled the handoff
  /// verifies through the live service instead and this field is unused.
  sim::Ns handoff_attest_ns = 0;

  // --- overload guard (queue-depth-aware early rejection) ---
  /// Reject at admission when the shard's predicted queueing delay — its
  /// live queue depth times a learned EWMA of observed service times over
  /// its warm capacity — crosses early_reject_budget_ns. Trades
  /// availability for tail latency under overload; every rejection feeds
  /// the autoscaler's rejected_delta scale-up signal. Default off: the
  /// admission path is byte-identical to builds without the guard.
  bool early_reject = false;
  sim::Ns early_reject_budget_ns = 0;
  double early_reject_alpha = 0.1;  ///< EWMA smoothing of service times
  /// Completions observed before the learned threshold is trusted (a cold
  /// EWMA must not reject the first burst).
  std::uint64_t early_reject_min_samples = 32;
};

/// One workload cost-class of the offered mix: `weight` is its share of
/// arrivals, `service_mult` scales the calibrated service model. Classes
/// key the per-shard HedgePolicy histograms, so a heavy class learns its
/// own hedge threshold instead of inflating the light ones'.
struct WorkloadClass {
  double weight = 1.0;
  double service_mult = 1.0;
};

/// One scheduled arrival-rate change (flash-crowd ramps, oscillating
/// load). Steps fire on the virtual clock; the arrival RNG stream is
/// untouched, so stepped runs stay seed-reproducible.
struct RateStep {
  sim::Ns at_ns = 0;
  double rate_rps = 0;
};

struct ShardedConfig {
  std::string platform = "tdx";
  bool secure = true;

  ArrivalKind arrival = ArrivalKind::kPoisson;
  double rate_rps = 2000;
  /// Scheduled rate changes applied on top of rate_rps (time-ordered by
  /// the experiment; empty = constant rate, byte-identical to before the
  /// field existed).
  std::vector<RateStep> rate_steps;
  std::uint64_t requests = 20000;
  /// Excluded from latency histograms (autoscaler/hedge warm-up), still
  /// counted in offered/completed.
  std::uint64_t warmup_requests = 0;
  std::uint64_t seed = 1;

  int replicas = 16;        ///< fleet size, sliced across the shards
  QueueConfig queue;        ///< per-replica limits
  ShardConfig shard;        ///< topology + failover costs
  /// Per-shard autoscaler, evaluated against each shard's own slice
  /// (min_warm/max_replicas clamp to the slice size). With `prewarm` the
  /// whole fleet starts warm and the scaler only parks/reboots.
  AutoscalerConfig scaler;
  bool prewarm = true;
  /// Offered workload mix; empty means one unit class. Order is the class
  /// index used by HedgePolicy and ShardedResult.
  std::vector<WorkloadClass> classes;

  /// Chaos schedule. Only link windows (host- or replica-addressed) are
  /// consumed — they replay onto the fabric via fault::LinkFaultDriver;
  /// crash/brownout chaos stays ClusterExperiment's domain. Empty plan =
  /// no probes, no breakers, event stream identical to a fault-free build.
  fault::FaultPlan faults;
  fault::RetryConfig retry;      ///< per-request failover budget
  fault::BreakerConfig breaker;  ///< per-(shard, slice replica) breakers
  /// Per-shard hedge policy; cost_classes is set from `classes`
  /// automatically. With hedge.cross_shard the backup copy is launched at
  /// the request's *ring-successor shard* over the live fabric —
  /// speculative crossing priced through the verification service (warm
  /// ticket-check vs cold full round) and gated by the learned-benefit
  /// floor, the fleet hedge budget, the successor's breakers and its
  /// degraded state. Off (the default): the legacy intra-shard sibling
  /// backup, byte-identical.
  fault::HedgeConfig hedge;
  sim::Ns probe_interval_ns = 50 * sim::kMs;
  sim::Ns detect_timeout_ns = 100 * sim::kMs;
  sim::Ns deadline_ns = 0;

  /// Shared attestation verification service fronting cross-shard trust.
  /// Disabled (the default): the successor shard charges the flat
  /// ShardConfig::cross_admit_ns and the event stream is byte-identical to
  /// builds without the service. Enabled on a secure fleet: every
  /// cross-shard admission verifies through one fabric-wide service — the
  /// first crossing to a shard pays a batched full round (collateral cache
  /// + amortized fetch), repeat crossings resume that shard's session
  /// ticket for ~ticket-check cost, and verification give-ups feed the
  /// existing failover / fault::RetryVerdict path. An empty
  /// attest_svc.cost.platform measures the model via CostModel::measure.
  attest::svc::VerifyConfig attest_svc;

  /// Closed-loop elastic controller (sched::ElasticController): consumes
  /// the fabric's rejection/backlog signals and *originates* churn events
  /// — replica joins paying cold start + join re-attest, shard joins,
  /// replica scale-in — alongside any scripted churn. Disabled (the
  /// default): no controller ticks are scheduled and the event stream is
  /// byte-identical to builds without the controller.
  ElasticConfig elastic;

  /// Transition-measurement window [measure_start_ns, measure_end_ns):
  /// completions inside it land in ShardedResult::latency_window (the
  /// p99-during-transition the elastic bench compares). 0,0 = off.
  sim::Ns measure_start_ns = 0;
  sim::Ns measure_end_ns = 0;

  obs::Tracer* tracer = nullptr;  ///< per-shard spans + fleet metrics
};

/// Per-shard counters, exported for the bench CSV and the fleet trace.
struct ShardStats {
  std::string host;                ///< "shard-<s>"
  std::uint32_t slice = 0;         ///< replicas in this shard's slice
  std::uint64_t admitted = 0;      ///< home admissions
  std::uint64_t cross_admitted = 0;///< admissions on behalf of other shards
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;          ///< degraded-mode forwards to successor
  std::uint64_t hedges = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t early_rejected = 0;  ///< overload-guard admission rejects
  bool live = true;                  ///< false once the shard left the ring
  int peak_warm = 0;
  std::vector<AutoscalerSample> scaler_trace;
};

/// Live-topology churn counters (all zero when the FaultPlan schedules no
/// churn events — the default, byte-identical configuration).
struct ChurnStats {
  std::uint64_t shard_joins = 0;
  std::uint64_t shard_leaves = 0;
  std::uint64_t replica_adds = 0;
  std::uint64_t replica_removes = 0;
  /// Slice members whose owning shard changed across any churn event.
  std::uint64_t replicas_moved = 0;
  /// Queued-but-unstarted requests handed off to a new owner (shard leave)
  /// or re-dispatched off a scaled-in replica.
  std::uint64_t handoff_forwarded = 0;
  /// In-flight requests drained in place on the departing owner.
  std::uint64_t handoff_drained = 0;
  std::uint64_t early_rejected = 0;  ///< overload-guard rejections, fleetwide
  /// Worst keyspace fraction a single ring-membership event moved,
  /// measured over a deterministic probe-key set...
  double max_moved_fraction = 0;
  /// ...and that fraction times the relevant live shard count N — ~1 for a
  /// minimal-disruption ring, and the quantity the bench bounds by 1.5.
  double max_moved_x_n = 0;
};

/// Verification-service counters exported per run (all zero when
/// ShardedConfig::attest_svc is disabled); mirrors VerifyService::publish.
struct AttestSvcStats {
  std::uint64_t full = 0;     ///< batched full verification rounds
  std::uint64_t evtpm = 0;    ///< e-vTPM local quote checks
  std::uint64_t batches = 0;  ///< batch flushes
  std::uint64_t batched = 0;  ///< requests that went through a batch
  std::uint64_t fetches = 0;  ///< collateral fetches (amortized per batch)
  std::uint64_t fetch_failures = 0;  ///< fetches lost to an outage window
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale = 0;
  std::uint64_t ticket_mints = 0;
  std::uint64_t ticket_resumes = 0;
  std::uint64_t ticket_expired = 0;
  std::uint64_t ticket_invalidated = 0;  ///< all reasons
  std::uint64_t deadline_giveups = 0;
  std::uint64_t queue_rejects = 0;
  std::uint64_t revocations = 0;
  std::uint64_t tcb_recoveries = 0;  ///< scheduled TCB-level bumps applied
};

/// Closed-loop scaling counters (all zero when ShardedConfig::elastic is
/// disabled — the default, byte-identical configuration).
struct ElasticStats {
  std::uint64_t ticks = 0;            ///< controller evaluations
  std::uint64_t replica_orders = 0;   ///< joiners ordered
  std::uint64_t shard_orders = 0;     ///< gateway shard joins ordered
  std::uint64_t joins_completed = 0;  ///< joiners that reached the ring
  std::uint64_t shard_joins_completed = 0;
  std::uint64_t join_crashes = 0;   ///< cold-start crashes detected
  std::uint64_t join_attest_failures = 0;  ///< join re-attests failed
  std::uint64_t join_retries = 0;   ///< failed attempts retried w/ backoff
  std::uint64_t joins_abandoned = 0;  ///< gave up after max attempts
  std::uint64_t scale_ins = 0;        ///< controller-ordered removals done
  std::uint64_t scale_in_aborts = 0;  ///< drain target tripped its breaker
  std::uint64_t shard_retires = 0;    ///< controller-ordered shard leaves
  std::uint64_t suppressed_cooldown = 0;  ///< brake: per-direction cooldown
  std::uint64_t suppressed_governor = 0;  ///< brake: max-churn-rate cap
  /// Warm capacity integrated over controller ticks (replica-seconds of
  /// virtual time) — the over-provisioning cost predictive mode pays.
  double warm_replica_seconds = 0;
};

/// Speculative cross-shard hedging counters (all zero unless
/// HedgeConfig::cross_shard is set — the default, byte-identical
/// configuration). `fired = wins + waste`; the declined_* counters record
/// stragglers whose backup never launched, each naming the interlock that
/// refused it.
struct HedgeStats {
  std::uint64_t fired = 0;  ///< backups launched (cross + intra fallback)
  std::uint64_t cross = 0;  ///< launched at the ring-successor shard
  std::uint64_t intra = 0;  ///< fell back to a home sibling (no successor)
  std::uint64_t wins = 0;   ///< backup copy responded first
  std::uint64_t cross_wins = 0;  ///< ...and it came from the successor
  /// First-response-wins cleanup: losers cancelled out of a replica queue
  /// vs losers whose in-flight network hop (crossing or response wire)
  /// was cancelled mid-transit.
  std::uint64_t cancelled_queue = 0;
  std::uint64_t cancelled_inflight = 0;
  /// Launch-gate declines (the budget/breaker/shed/cost interlocks).
  std::uint64_t declined_budget = 0;    ///< fleet hedge budget exhausted
  std::uint64_t declined_breaker = 0;   ///< successor slice had an open breaker
  std::uint64_t declined_degraded = 0;  ///< successor degraded or unreachable
  std::uint64_t declined_cost = 0;  ///< crossing price exceeded learned benefit
  /// What the crossings actually paid through the verification service.
  std::uint64_t ticket_resumes = 0;  ///< warm ticket-check crossings
  std::uint64_t full_verifies = 0;   ///< cold / post-revocation full rounds
  std::uint64_t attest_failures = 0; ///< crossing verify non-ok, copy died
};

struct ShardedResult {
  ShardedConfig cfg;
  ServiceModel model;
  metrics::LogHistogram latency;      ///< all completed steady-state reqs
  metrics::LogHistogram latency_fault;///< completed while a window was open
  /// Completed after >= 1 intra-shard retry but no shard change — the
  /// intra-shard failover tail.
  metrics::LogHistogram latency_intra;
  /// Completed after crossing to a non-home shard — the cross-shard
  /// failover tail the bench compares against latency_intra.
  metrics::LogHistogram latency_cross;
  /// Completions inside the cfg measurement window (empty when the window
  /// is unset) — the p99-during-transition of the elastic bench.
  metrics::LogHistogram latency_window;
  /// Completions of requests that launched a speculative hedge (empty
  /// unless hedge.cross_shard) — the straggler population the hedging
  /// bench prices against reactive failover.
  metrics::LogHistogram latency_hedged;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   ///< 429-style replica admission rejections
  std::uint64_t failed = 0;     ///< typed give-ups (see failure_codes)
  std::uint64_t retries = 0;    ///< failover re-dispatch attempts
  std::uint64_t failovers = 0;  ///< copies that died and left a replica
  std::uint64_t cross_failovers = 0;  ///< requests that changed shard
  std::uint64_t shed = 0;             ///< degraded-mode forwards
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t responses_lost = 0;   ///< asymmetric-partition losses
  /// Terminal failure reasons -> count (typed core::ErrorCode names).
  std::map<std::string, std::uint64_t> failure_codes;
  std::vector<ShardStats> shards;
  AttestSvcStats attest;   ///< verification-service counters (see above)
  HedgeStats hedging;      ///< speculative cross-shard hedging (see above)
  ChurnStats churn;        ///< live-topology churn counters (see above)
  ElasticStats elastic;    ///< closed-loop scaling counters (see above)
  std::vector<ElasticSample> elastic_trace;  ///< one row per controller tick
  /// Instant of the run's last admission rejection (429 or early reject);
  /// negative when nothing was ever rejected. Time-to-absorb = this minus
  /// the ramp start, for runs whose overload ends once capacity arrives.
  sim::Ns last_reject_ns = -1;
  sim::Ns makespan_ns = 0;

  [[nodiscard]] double throughput_rps() const;
  [[nodiscard]] double availability() const {
    return offered ? static_cast<double>(completed) /
                         static_cast<double>(offered)
                   : 1.0;
  }
  /// Zero-lost-requests invariant: every offered request ends in exactly
  /// one bucket, even when whole shards are partitioned away.
  [[nodiscard]] bool accounted() const {
    return completed + rejected + failed == offered;
  }
  [[nodiscard]] std::string to_json() const;
};

/// The admission plane: shard ring, slice assignment, request router.
/// Pure topology — the experiment owns the clock, fabric and queues.
///
/// The topology is *elastic*: shards join and leave the ring and replicas
/// scale in and out mid-run. Every membership change rebuilds the
/// bounded-load slice assignment over the live fleet and reports exactly
/// which replicas changed owner, so the experiment can run the handoff
/// protocol for them (and only them). Shard and replica indices are stable
/// across churn — departed slots stay dead, new members append.
class ShardedFrontend {
 public:
  /// One slice member whose owning shard changed across a churn event.
  /// `from`/`to` are shard indices, or kUnowned for a replica entering
  /// (scale-out) or leaving (scale-in) the fleet.
  struct SliceMove {
    static constexpr std::uint32_t kUnowned = 0xFFFFFFFFu;
    std::uint32_t replica = 0;
    std::uint32_t from = kUnowned;
    std::uint32_t to = kUnowned;
  };

  /// Builds the shard ring and assigns `replicas` fleet members to slices
  /// with the bounded-load spill rule. Throws std::invalid_argument for
  /// non-positive shards/vnodes/replicas or load_factor < 1.
  ShardedFrontend(const ShardConfig& cfg, int replicas);

  /// Total shard slots ever created (live + dead).
  [[nodiscard]] int shards() const { return static_cast<int>(slices_.size()); }
  [[nodiscard]] int live_shards() const {
    return static_cast<int>(ring_.live_nodes());
  }
  [[nodiscard]] bool shard_live(std::uint32_t s) const {
    return ring_.live(s);
  }
  /// Total replica slots ever created (live + scaled-in).
  [[nodiscard]] int replicas() const { return static_cast<int>(owner_.size()); }
  [[nodiscard]] int live_replicas() const { return live_replicas_; }
  [[nodiscard]] bool replica_live(std::uint32_t r) const {
    return r < replica_live_.size() && replica_live_[r];
  }
  /// Global replica indices owned by shard `s` (deterministic order).
  [[nodiscard]] const std::vector<std::uint32_t>& slice(int s) const {
    return slices_[static_cast<std::size_t>(s)];
  }
  /// Fabric host name of shard `s` ("shard-<s>") / replica `r`.
  [[nodiscard]] static std::string shard_host(int s);
  [[nodiscard]] static std::string replica_host(std::uint32_t r);

  /// Deterministic failover chain of request `id`: chain[0] is the home
  /// shard, later entries the clockwise successors (each live shard once).
  [[nodiscard]] std::vector<std::uint32_t> route(std::uint64_t id) const;
  /// The shard owning replica `r`'s slice (SliceMove::kUnowned when the
  /// replica is scaled in or was never added).
  [[nodiscard]] std::uint32_t owner_of_replica(std::uint32_t r) const {
    return owner_[r];
  }

  // Churn operations. Each mutates the ring membership, rebuilds the
  // bounded-load slice assignment over the live fleet, and returns the
  // replicas whose owner changed.
  /// A fresh shard joins the ring ("shard-<index>"). Returns its index.
  int add_shard(std::vector<SliceMove>* moves = nullptr);
  /// Shard `s` leaves the ring; its slice re-shards onto the survivors.
  /// Throws when `s` is dead or the last live shard.
  std::vector<SliceMove> remove_shard(std::uint32_t s);
  /// A fresh replica scales out (assigned to a slice immediately; the
  /// experiment decides when it is warm). Returns its global index.
  std::uint32_t add_replica(std::vector<SliceMove>* moves = nullptr);
  /// Replica `r` scales in: removed from its slice, slot stays dead.
  std::vector<SliceMove> remove_replica(std::uint32_t r);

  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] HashRing& ring() { return ring_; }

 private:
  /// Recomputes the whole bounded-load assignment over the live fleet and
  /// appends every ownership change to `moves` (may be null).
  void rebuild_slices(std::vector<SliceMove>* moves);

  double load_factor_;
  int live_replicas_ = 0;
  HashRing ring_;
  std::vector<std::vector<std::uint32_t>> slices_;  ///< shard -> replicas
  std::vector<std::uint32_t> owner_;                ///< replica -> shard
  std::vector<bool> replica_live_;
};

class ShardedExperiment {
 public:
  explicit ShardedExperiment(ShardedConfig cfg) : cfg_(std::move(cfg)) {}

  /// Simulates the sharded fabric with an explicit service model (tests
  /// and pre-calibrated bench sweeps; ServiceModel::calibrate provides the
  /// model for real platform/mode cells).
  [[nodiscard]] ShardedResult run_with_model(const ServiceModel& model) const;

 private:
  ShardedConfig cfg_;
};

}  // namespace confbench::sched

#include "sched/event_queue.h"

#include <algorithm>
#include <utility>

namespace confbench::sched {

void EventQueue::at(sim::Ns t, Action a) {
  if (t < clock_.now()) t = clock_.now();
  heap_.push_back(Event{t, next_seq_++, std::move(a)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  clock_.advance(ev.time - clock_.now());
  ++processed_;
  ev.act();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace confbench::sched

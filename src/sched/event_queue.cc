#include "sched/event_queue.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace confbench::sched {

namespace {

/// Truncates a virtual timestamp to integer nanoseconds. Exact for every
/// non-negative double below 2^63; bucket k at shift b then holds exactly
/// the times in [k·2^b, (k+1)·2^b).
inline std::uint64_t to_int_ns(sim::Ns t) {
  return static_cast<std::uint64_t>(t);
}

}  // namespace

void EventQueue::ready_push(const Entry& e) {
  ready_.push_back(e);
  std::push_heap(ready_.begin(), ready_.end(), Later{});
}

EventId EventQueue::schedule(sim::Ns t, Action a) {
  if (t < clock_.now()) {
    ++clamped_;
    assert(!strict_past_ && "event scheduled in the past");
    t = clock_.now();
  }
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  const std::uint64_t seq = next_seq_++;
  Slot& s = slots_[slot];
  s.act = std::move(a);
  s.time = t;
  s.seq = seq;
  insert(Entry{t, seq, slot});
  ++live_;
  return EventId{slot, seq};
}

void EventQueue::insert(const Entry& e) {
  const std::uint64_t it = to_int_ns(e.time);
  const std::uint64_t k0 = it >> kL0Shift;
  if (k0 < ready_end0_) {
    ready_push(e);
  } else if (k0 < l0_limit_) {
    l0_.put(k0, e);
  } else if (const std::uint64_t k1 = it >> kL1Shift; k1 < l1_limit_) {
    l1_.put(k1, e);
  } else {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid() || id.slot >= slots_.size()) return false;
  Slot& s = slots_[id.slot];
  if (s.seq != id.seq) return false;
  s.act = Action();  // run the closure's destructor now
  s.seq = 0;
  free_.push_back(id.slot);
  --live_;
  ++cancelled_;
  // The wheel entry stays behind as a stale (slot, seq) pair and is
  // skipped in O(1) when its bucket drains.
  return true;
}

EventId EventQueue::reschedule(EventId id, sim::Ns t) {
  if (!id.valid() || id.slot >= slots_.size()) return EventId{};
  Slot& s = slots_[id.slot];
  if (s.seq != id.seq) return EventId{};
  if (t < clock_.now()) {
    ++clamped_;
    assert(!strict_past_ && "event rescheduled into the past");
    t = clock_.now();
  }
  const std::uint64_t seq = next_seq_++;
  s.seq = seq;
  s.time = t;
  insert(Entry{t, seq, id.slot});  // old entry goes stale in place
  return EventId{id.slot, seq};
}

std::uint64_t EventQueue::next_nonempty(const Level& lv, std::uint64_t from) {
  // The window starting at `from` spans at most kSlots buckets, so a
  // single wrap over the ring bitmap visits each word at most twice.
  std::uint64_t s = from & kMask;
  for (std::uint64_t scanned = 0; scanned < 2 * kSlots;) {
    const std::uint64_t word = lv.bits[s >> 6] >> (s & 63);
    if (word != 0) {
      const std::uint64_t hit =
          s + static_cast<std::uint64_t>(std::countr_zero(word));
      return from + ((hit - (from & kMask)) & kMask);
    }
    const std::uint64_t step = 64 - (s & 63);
    s = (s + step) & kMask;
    scanned += step;
  }
  assert(false && "next_nonempty on an empty level");
  return from;
}

void EventQueue::drain_overflow() {
  while (!overflow_.empty() &&
         (to_int_ns(overflow_.front().time) >> kL1Shift) < l1_limit_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    const Entry e = overflow_.back();
    overflow_.pop_back();
    const std::uint64_t it = to_int_ns(e.time);
    const std::uint64_t k0 = it >> kL0Shift;
    if (k0 < ready_end0_) {
      ready_push(e);
    } else if (k0 < l0_limit_) {
      l0_.put(k0, e);
    } else {
      l1_.put(it >> kL1Shift, e);
    }
  }
}

bool EventQueue::refill_ready() {
  for (;;) {
    if (!ready_.empty()) return true;
    if (l0_.count > 0) {
      // Open the next nonempty near bucket: dump it into the ready heap
      // and advance the window edge past it. Everything still in L0/L1/
      // overflow is strictly later than everything in this bucket.
      const std::uint64_t k = next_nonempty(l0_, ready_end0_);
      const std::uint64_t s = k & kMask;
      std::vector<Entry>& b = l0_.bucket[s];
      for (const Entry& e : b) ready_push(e);
      l0_.count -= b.size();
      b.clear();
      l0_.bits[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
      ready_end0_ = k + 1;
      return true;
    }
    if (l1_.count > 0) {
      // Cascade one calendar bucket down into the (now empty) near wheel.
      const std::uint64_t k1 = next_nonempty(l1_, l1_start_);
      const std::uint64_t s = k1 & kMask;
      ready_end0_ = k1 << (kL1Shift - kL0Shift);
      l0_limit_ = (k1 + 1) << (kL1Shift - kL0Shift);
      std::vector<Entry>& b = l1_.bucket[s];
      for (const Entry& e : b) l0_.put(to_int_ns(e.time) >> kL0Shift, e);
      l1_.count -= b.size();
      b.clear();
      l1_.bits[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
      l1_start_ = k1 + 1;
      l1_limit_ = l1_start_ + kSlots;
      drain_overflow();
      continue;
    }
    if (!overflow_.empty()) {
      // Everything pending is far future: re-anchor the calendar at the
      // earliest overflow event instead of spinning through empty buckets.
      const std::uint64_t k1 = to_int_ns(overflow_.front().time) >> kL1Shift;
      l1_start_ = k1;
      l1_limit_ = k1 + kSlots;
      ready_end0_ = k1 << (kL1Shift - kL0Shift);
      l0_limit_ = ready_end0_;  // empty near window until the cascade
      drain_overflow();
      continue;
    }
    return false;
  }
}

bool EventQueue::step() {
  for (;;) {
    if (!refill_ready()) return false;
    std::pop_heap(ready_.begin(), ready_.end(), Later{});
    const Entry e = ready_.back();
    ready_.pop_back();
    Slot& s = slots_[e.slot];
    if (s.seq != e.seq) continue;  // cancelled or rescheduled: skip, O(1)
    // Move the action out before running it: the handler may schedule new
    // events and grow the slab under our feet, and freeing the slot first
    // makes cancel(own id) from inside the handler a clean no-op.
    Action act = std::move(s.act);
    s.seq = 0;
    free_.push_back(e.slot);
    --live_;
    clock_.advance(e.time - clock_.now());
    ++processed_;
    act();
    return true;
  }
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace confbench::sched

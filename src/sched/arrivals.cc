#include "sched/arrivals.h"

#include <cmath>
#include <stdexcept>

namespace confbench::sched {

std::string_view to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kFixedRate:
      return "fixed-rate";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(ArrivalKind kind, double rate_rps,
                               std::uint64_t seed)
    : kind_(kind), rate_rps_(rate_rps), rng_(seed) {
  if (!(rate_rps > 0)) throw std::invalid_argument("arrival rate must be > 0");
}

void ArrivalProcess::set_rate(double rate_rps) {
  if (!(rate_rps > 0))
    throw std::invalid_argument("arrival rate must be > 0");
  rate_rps_ = rate_rps;
}

sim::Ns ArrivalProcess::next_gap() {
  const sim::Ns mean_gap = sim::kSec / rate_rps_;
  switch (kind_) {
    case ArrivalKind::kPoisson: {
      // Inverse-CDF exponential; -log1p(-u) is exact for u near 0 and
      // finite for every u in [0, 1).
      const double u = rng_.next_double();
      return -std::log1p(-u) * mean_gap;
    }
    case ArrivalKind::kFixedRate:
      return mean_gap;
  }
  return mean_gap;
}

}  // namespace confbench::sched

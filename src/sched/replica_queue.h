// Per-VM concurrency-limited request queue.
//
// Each warm VM replica serves at most `concurrency` requests at once (one
// per vCPU worker) and buffers at most `queue_depth` more. A request that
// would exceed queued + in-service capacity is rejected at admission — the
// 429-style back-pressure a production gateway applies instead of letting
// queues grow without bound. The queue is strict FIFO, so service order is
// deterministic given the admission order.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace confbench::sched {

struct QueueConfig {
  int concurrency = 8;   ///< simultaneous in-service requests per VM
  int queue_depth = 32;  ///< pending requests buffered beyond that
};

class ReplicaQueue {
 public:
  explicit ReplicaQueue(QueueConfig cfg = {}) : cfg_(cfg) {}

  /// Admits a request. Returns false (reject with 429) when the replica is
  /// at queued + in-service capacity.
  [[nodiscard]] bool admit(std::uint64_t request_id);

  /// Pops the next request to start serving, if a concurrency slot is free
  /// and something is pending. The caller must mark the returned request
  /// as started (this call occupies the slot).
  [[nodiscard]] std::optional<std::uint64_t> start_next();

  /// Releases one in-service slot (a request finished).
  void complete();

  /// Removes one *pending* (not yet in-service) request, reclaiming its
  /// buffer slot — the hedge-loser cancellation path. Returns false when
  /// the id is not pending (already started or never admitted here).
  [[nodiscard]] bool cancel(std::uint64_t request_id);

  /// Empties the queue (fault injection: the replica's VM died). Returns
  /// the evicted *pending* request ids in FIFO order and zeroes the
  /// in-service count — callers track in-service ids themselves and must
  /// fail those over too.
  [[nodiscard]] std::vector<std::uint64_t> evict_all();

  [[nodiscard]] int in_service() const { return in_service_; }
  [[nodiscard]] std::size_t queued() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t backlog() const {
    return static_cast<std::uint64_t>(in_service_) + pending_.size();
  }
  [[nodiscard]] bool idle() const { return backlog() == 0; }
  [[nodiscard]] const QueueConfig& config() const { return cfg_; }

  // Lifetime stats for reporting.
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::size_t peak_queued() const { return peak_queued_; }

 private:
  QueueConfig cfg_;
  std::deque<std::uint64_t> pending_;
  int in_service_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t peak_queued_ = 0;
};

}  // namespace confbench::sched

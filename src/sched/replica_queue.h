// Per-VM concurrency-limited request queue.
//
// Each warm VM replica serves at most `concurrency` requests at once (one
// per vCPU worker) and buffers at most `queue_depth` more. A request that
// would exceed queued + in-service capacity is rejected at admission — the
// 429-style back-pressure a production gateway applies instead of letting
// queues grow without bound. The queue is strict FIFO, so service order is
// deterministic given the admission order.
//
// Admission returns a typed Ticket, mirroring EventQueue's EventId: the
// hedge-loser path cancels a still-queued copy in O(1) by invalidating its
// ring entry instead of scanning the pending deque for its id (the old
// tombstone walk). A dead entry is skipped for free when the FIFO head
// reaches it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace confbench::sched {

struct QueueConfig {
  int concurrency = 8;   ///< simultaneous in-service requests per VM
  int queue_depth = 32;  ///< pending requests buffered beyond that
};

class ReplicaQueue {
 public:
  /// Handle to a pending (not yet in-service) admission. Valid until the
  /// request starts service, is cancelled, or the queue is evicted.
  struct Ticket {
    std::uint64_t pos = kInvalidPos;
    [[nodiscard]] constexpr bool valid() const { return pos != kInvalidPos; }
  };

  explicit ReplicaQueue(QueueConfig cfg = {}) : cfg_(cfg) {}

  /// Admits a request. Returns an invalid ticket (reject with 429) when
  /// the replica is at queued + in-service capacity.
  [[nodiscard]] Ticket admit(std::uint64_t request_id);

  /// Pops the next request to start serving, if a concurrency slot is free
  /// and something is pending. The caller must mark the returned request
  /// as started (this call occupies the slot).
  [[nodiscard]] std::optional<std::uint64_t> start_next();

  /// Releases one in-service slot (a request finished).
  void complete();

  /// Cancels one *pending* admission in O(1) — the hedge-loser path.
  /// Returns false when the ticket is stale (the request already started
  /// service, was cancelled, or was evicted).
  [[nodiscard]] bool cancel(Ticket t);

  /// Empties the queue (fault injection: the replica's VM died). Returns
  /// the evicted *pending* request ids in FIFO order and zeroes the
  /// in-service count — callers track in-service ids themselves and must
  /// fail those over too.
  [[nodiscard]] std::vector<std::uint64_t> evict_all();

  [[nodiscard]] int in_service() const { return in_service_; }
  [[nodiscard]] std::size_t queued() const { return live_queued_; }
  [[nodiscard]] std::uint64_t backlog() const {
    return static_cast<std::uint64_t>(in_service_) + live_queued_;
  }
  [[nodiscard]] bool idle() const { return backlog() == 0; }
  [[nodiscard]] const QueueConfig& config() const { return cfg_; }

  // Lifetime stats for reporting.
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::size_t peak_queued() const { return peak_queued_; }

 private:
  static constexpr std::uint64_t kInvalidPos = ~std::uint64_t{0};

  struct Pending {
    std::uint64_t id = 0;
    bool live = false;
  };

  void grow();

  QueueConfig cfg_;
  /// Power-of-two ring indexed by absolute admission position; a Ticket is
  /// that position, so staleness is a range check plus a live flag.
  std::vector<Pending> ring_;
  std::uint64_t head_ = 0;  ///< absolute position of the FIFO front
  std::uint64_t tail_ = 0;  ///< absolute position one past the FIFO back
  std::size_t live_queued_ = 0;
  int in_service_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t peak_queued_ = 0;
};

}  // namespace confbench::sched

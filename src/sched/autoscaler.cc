#include "sched/autoscaler.h"

#include <algorithm>

namespace confbench::sched {

int Autoscaler::evaluate(int warm, int booting, std::uint64_t in_service,
                         std::uint64_t queued, int concurrency_per_vm,
                         sim::Ns now, std::uint64_t rejected_delta) {
  const double warm_capacity =
      static_cast<double>(warm) * static_cast<double>(concurrency_per_vm);
  const double utilization =
      warm_capacity > 0 ? static_cast<double>(in_service) / warm_capacity
                        : (in_service + queued > 0 ? 1.0 : 0.0);

  int decision = 0;
  const int total = warm + booting;
  if ((utilization >= cfg_.scale_up_utilization || queued > 0 ||
       rejected_delta > 0) &&
      total < cfg_.max_replicas) {
    // Boot enough replicas to absorb the queued backlog and the requests
    // turned away since the last tick, assuming each new replica
    // contributes `concurrency` slots — but never more than the fleet cap,
    // and count capacity that is already booting.
    const std::uint64_t deficit =
        (queued + rejected_delta) / std::max(1, concurrency_per_vm) + 1;
    decision = static_cast<int>(std::min<std::uint64_t>(
        deficit, static_cast<std::uint64_t>(cfg_.max_replicas - total)));
    low_ticks_ = 0;
  } else if (utilization < cfg_.scale_down_utilization && queued == 0 &&
             warm > cfg_.min_warm && booting == 0) {
    if (++low_ticks_ >= cfg_.scale_down_patience) {
      decision = -1;  // park one per decision; patience restarts
      low_ticks_ = 0;
    }
  } else {
    low_ticks_ = 0;
  }

  trace_.push_back(AutoscalerSample{now, warm, booting, in_service, queued,
                                    rejected_delta, utilization, decision});
  return decision;
}

}  // namespace confbench::sched

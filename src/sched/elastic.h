// Closed-loop elastic scaling for the sharded fabric.
//
// PR 8 gave the shard fabric live membership, but every scale event was
// still *scripted* in a FaultPlan. ElasticController closes the loop: it
// consumes the signals the fabric already emits — rejected_delta (queue-full
// 429s plus overload-guard early rejections), queue depth, the learned EWMA
// service time — and *originates* churn events (replica joins, shard joins,
// replica scale-in) on the virtual clock.
//
// Why a naive loop fails on confidential fleets: capacity reacts slowly.
// A joiner pays the platform cold start (initial memory acceptance / RMP
// population / realm delegation on TDX and SNP) *plus* a join-time
// re-attestation before it may serve — ~3.7 virtual seconds on TDX. A
// purely reactive loop therefore either arrives long after the flash crowd
// (every request in the gap is rejected) or, chasing an oscillating load,
// flaps the ring and pays the churn cost forever. The controller addresses
// both by construction:
//
//   * predictive mode — a Holt linear-trend forecast of the arrival rate
//     (level + trend exponential smoothing) sizes the fleet for the demand
//     expected `lead_time_ns` ahead (cold start + measured join re-attest),
//     so capacity ordered on the ramp's first ticks is warm when the peak
//     arrives. Reactive mode sizes for current demand only; the bench
//     compares the two head-to-head.
//   * anti-flapping brakes — per-direction cooldowns (a scale-out does not
//     suppress a scale-in and vice versa), a hysteresis band between the
//     scale-out and scale-in thresholds, scale-down patience, and a
//     max-churn-rate governor bounding membership events per sliding
//     window, so an oscillating load cannot thrash the ring.
//   * bounded, self-owned capacity — the controller only ever removes
//     capacity it added (the experiment's base fleet is its floor), and
//     cumulative orders are capped, which is also what lets the experiment
//     pre-size every slot a run can ever need (the HashRing contract).
//
// Like Autoscaler, this class is pure decision logic: the experiment feeds
// it one ElasticSignals snapshot per tick and applies the returned orders,
// which keeps the policy unit-testable and the event schedule
// deterministic. Join failures (cold-start crash, attest outage during the
// join re-attest) are the *experiment's* to detect and retry; the
// controller only hears about permanently abandoned joins and aborted
// scale-ins so its capacity ledger stays truthful.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.h"

namespace confbench::sched {

struct ElasticConfig {
  bool enabled = false;
  /// Holt-forecast lead-time sizing (see header comment). Off = reactive:
  /// size for the current tick's demand only.
  bool predictive = false;
  sim::Ns tick_ns = 50 * sim::kMs;
  /// How far ahead predictive mode sizes capacity. Set it to the measured
  /// cold start plus the measured join re-attest: that is exactly how long
  /// an order takes to become warm capacity.
  sim::Ns lead_time_ns = 0;
  /// Fleet is sized so demand_rps / capacity_rps stays at or below this.
  double target_utilization = 0.80;
  /// Holt smoothing: level_alpha on the per-tick rate, trend_beta on the
  /// level's first difference.
  double level_alpha = 0.4;
  double trend_beta = 0.2;

  // --- anti-flapping brakes -------------------------------------------------
  /// Scale in only when needed capacity falls below warm * down_threshold
  /// (the hysteresis band between this and the scale-out point at
  /// needed > have keeps a borderline fleet from oscillating).
  double down_threshold = 0.6;
  /// Consecutive low ticks before one replica is removed.
  int down_patience = 4;
  /// Minimum gap between scale-out orders / between scale-in orders.
  sim::Ns up_cooldown_ns = 0;
  sim::Ns down_cooldown_ns = 0;
  /// Max-churn-rate governor: at most this many membership events ordered
  /// in any sliding churn_window_ns (0 = unlimited).
  int max_events_per_window = 0;
  sim::Ns churn_window_ns = 2 * sim::kSec;

  // --- capacity budget ------------------------------------------------------
  /// Cumulative cap on controller-ordered joiners beyond the base fleet
  /// (also the experiment's pre-sizing bound). 0 disables scale-out.
  int max_extra_replicas = 0;
  /// Order one gateway shard join per this many joiners ordered, so the
  /// admission plane grows with the fleet (0 = replicas only).
  int replicas_per_shard = 0;
  int max_extra_shards = 0;

  // --- join fault handling (consumed by the experiment) ---------------------
  /// Attempts per joiner before the join is abandoned.
  int join_max_attempts = 4;
  /// Backoff after a failed attempt: join_backoff_ns * mult^(attempt-1).
  sim::Ns join_backoff_ns = 100 * sim::kMs;
  double join_backoff_mult = 2.0;
  /// Join-time re-attestation charged per attempt on secure fleets when no
  /// verification service is wired (with ShardedConfig::attest_svc the
  /// join verifies through the live service instead).
  sim::Ns join_attest_ns = 0;
};

/// One controller tick's observations, assembled by the experiment.
struct ElasticSignals {
  sim::Ns now = 0;
  std::uint64_t arrivals_delta = 0;  ///< requests offered since last tick
  std::uint64_t rejected_delta = 0;  ///< 429s + early rejections since last
  std::uint64_t queued = 0;          ///< fleetwide queued-but-unstarted
  std::uint64_t in_service = 0;
  int warm = 0;     ///< live warm replicas, fleetwide
  int pending = 0;  ///< ordered capacity not yet warm (booting + joining)
  /// Modeled throughput of one warm replica; the experiment substitutes
  /// the learned EWMA-derived capacity once enough completions exist.
  double per_replica_rps = 0;
};

/// What the experiment should do this tick.
struct ElasticDecision {
  int add_replicas = 0;     ///< order this many joiners
  int add_shards = 0;       ///< order this many gateway shard joins
  int remove_replicas = 0;  ///< scale in one controller-added replica
  int remove_shards = 0;    ///< retire one controller-added shard
  [[nodiscard]] bool any() const {
    return add_replicas || add_shards || remove_replicas || remove_shards;
  }
};

/// One tick's observation + forecast + decision, kept for traces/CSV.
struct ElasticSample {
  sim::Ns t = 0;
  double rate_rps = 0;      ///< raw per-tick arrival rate
  double level_rps = 0;     ///< Holt level
  double trend_rps = 0;     ///< Holt trend (per tick)
  double demand_rps = 0;    ///< rate the decision sized for
  std::uint64_t rejected_delta = 0;
  std::uint64_t queued = 0;
  int warm = 0;
  int pending = 0;
  int needed = 0;  ///< replicas the demand requires at target utilization
  ElasticDecision decision;
  std::uint64_t suppressed_cooldown = 0;  ///< orders a cooldown swallowed
  std::uint64_t suppressed_governor = 0;  ///< orders the governor swallowed
};

class ElasticController {
 public:
  explicit ElasticController(ElasticConfig cfg);

  /// One policy tick: updates the forecast, applies the brakes, returns
  /// the orders. The experiment applies them (and later reports permanent
  /// failures through the on_* feedback calls).
  [[nodiscard]] ElasticDecision evaluate(const ElasticSignals& sig);

  /// A joiner exhausted its attempts and was abandoned: the capacity will
  /// never arrive, so the live-extra ledger shrinks (the cumulative order
  /// budget stays spent — an abandoned slot is not reusable, because the
  /// experiment pre-sized exactly max_extra_replicas slots).
  void on_join_abandoned();
  /// A scale-in order was aborted (drain target tripped its breaker): the
  /// replica stays in the fleet, so the ledger grows back.
  void on_scale_in_aborted();
  void on_shard_retire_aborted();

  [[nodiscard]] const ElasticConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<ElasticSample>& trace() const {
    return trace_;
  }
  /// Cumulative joiners ordered (never refunded; bounds pre-sizing).
  [[nodiscard]] int ordered_replicas() const { return ordered_replicas_; }
  [[nodiscard]] int ordered_shards() const { return ordered_shards_; }
  /// Controller-added capacity currently alive (orders - removes -
  /// abandons); the only capacity scale-in may target.
  [[nodiscard]] int live_extra_replicas() const {
    return live_extra_replicas_;
  }
  [[nodiscard]] int live_extra_shards() const { return live_extra_shards_; }

 private:
  /// Governor admission: how many of `want` membership events fit in the
  /// sliding window right now. Records the granted ones.
  int governor_admit(sim::Ns now, int want);

  ElasticConfig cfg_;
  bool seen_ = false;
  double level_ = 0;
  double trend_ = 0;
  int low_ticks_ = 0;
  int ordered_replicas_ = 0;
  int ordered_shards_ = 0;
  int live_extra_replicas_ = 0;
  int live_extra_shards_ = 0;
  sim::Ns last_up_ns_ = 0;
  bool up_ever_ = false;
  sim::Ns last_down_ns_ = 0;
  bool down_ever_ = false;
  std::deque<sim::Ns> churn_events_;  ///< governor's sliding window
  std::vector<ElasticSample> trace_;
};

}  // namespace confbench::sched

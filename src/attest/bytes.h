// Little-endian binary (de)serialisation helpers for attestation evidence.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace confbench::attest {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(const void* data, std::size_t len);
  void bytes(const std::vector<std::uint8_t>& v) { bytes(v.data(), v.size()); }
  template <std::size_t N>
  void array(const std::array<std::uint8_t, N>& a) {
    bytes(a.data(), N);
  }
  /// Length-prefixed string (u32 length).
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader with explicit failure state: any read past the end sets ok() to
/// false and returns zeros, so parsers can check once at the end.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool bytes(void* out, std::size_t len);
  template <std::size_t N>
  std::array<std::uint8_t, N> array() {
    std::array<std::uint8_t, N> a{};
    bytes(a.data(), N);
    return a;
  }
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return pos_ == buf_.size(); }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace confbench::attest

// Arm CCA realm attestation token (structures + verification logic).
//
// The paper excludes CCA from Fig. 5 because the FVP lacks attestation
// hardware (§IV-B); ConfBench nevertheless ships the evidence structures so
// the flow is ready when silicon arrives (§VI). A CCA token is a *pair*:
//
//   platform token — signed by the CPAK (platform key, chained to the Arm
//       root), carrying platform measurements and a hash of the RAK;
//   realm token — signed by the RAK (realm attestation key), carrying the
//       RIM, the four REMs, the personalization value and the challenge.
//
// Verification checks the CPAK chain, the RAK binding (its hash must match
// the platform token's claim), the realm signature, and the measurement
// policy — the same claim-binding topology as the real RMM spec.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "attest/measurement.h"
#include "attest/signer.h"

namespace confbench::attest {

struct PlatformToken {
  std::uint16_t profile = 1;        ///< CCA platform profile version
  Digest platform_measurement{};    ///< boot firmware measurements
  Digest rak_pub_hash{};            ///< binds the realm key to this platform
  std::uint8_t lifecycle = 3;       ///< secured state
  Signature signature{};            ///< CPAK signature over the body

  [[nodiscard]] std::vector<std::uint8_t> signed_body() const;
};

struct RealmToken {
  RealmMeasurements meas;
  Digest personalization{};         ///< RPV
  Digest challenge{};               ///< verifier nonce
  Signature signature{};            ///< RAK signature over the body

  [[nodiscard]] std::vector<std::uint8_t> signed_body() const;
};

struct CcaToken {
  PlatformToken platform;
  RealmToken realm;
  PubKey rak_pub{};
  std::vector<Certificate> cpak_chain;  ///< CPAK -> Arm root

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<CcaToken> deserialize(
      const std::vector<std::uint8_t>& buf);
};

/// RMM-side token issuance for one platform.
class CcaTokenGenerator {
 public:
  explicit CcaTokenGenerator(const std::string& platform_tag);

  [[nodiscard]] CcaToken generate(const RealmMeasurements& meas,
                                  const Digest& challenge,
                                  const Digest& personalization) const;

  [[nodiscard]] const PubKey& arm_root() const { return root_.pub; }

 private:
  Keypair root_;  ///< Arm CCA root (trust anchor)
  Keypair cpak_;  ///< platform attestation key
  Keypair rak_;   ///< realm attestation key
  std::vector<Certificate> chain_;
  Digest platform_measurement_{};
};

struct CcaVerifyPolicy {
  RealmMeasurements expected;
  Digest expected_challenge{};
  Digest expected_platform_measurement{};
};

struct CcaVerifyOutcome {
  bool ok = false;
  std::string failure;
};

CcaVerifyOutcome verify_cca_token(const CcaToken& token, const PubKey& root,
                                  const CcaVerifyPolicy& policy);

}  // namespace confbench::attest

#include "attest/quote.h"

#include "attest/hmac.h"

namespace confbench::attest {

std::vector<std::uint8_t> TdReport::serialize() const {
  ByteWriter w;
  w.u32(version);
  w.array(meas.mrtd);
  for (const auto& r : meas.rtmr) w.array(r.value());
  w.array(report_data);
  return w.take();
}

std::vector<std::uint8_t> TdxQuote::signed_body() const {
  ByteWriter w;
  w.u16(header_version);
  w.u32(tee_type);
  w.u16(tcb_level);
  w.bytes(report.serialize());
  return w.take();
}

std::vector<std::uint8_t> TdxQuote::serialize() const {
  ByteWriter w;
  w.u16(header_version);
  w.u32(tee_type);
  w.u16(tcb_level);
  w.u32(report.version);
  w.array(report.meas.mrtd);
  for (const auto& r : report.meas.rtmr) w.array(r.value());
  w.array(report.report_data);
  w.array(signature);
  w.array(attestation_key);
  w.u32(static_cast<std::uint32_t>(pck_chain.size()));
  for (const auto& c : pck_chain) {
    const auto blob = c.serialize();
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.bytes(blob);
  }
  return w.take();
}

std::optional<TdxQuote> TdxQuote::deserialize(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  TdxQuote q;
  q.header_version = r.u16();
  q.tee_type = r.u32();
  q.tcb_level = r.u16();
  q.report.version = r.u32();
  q.report.meas.mrtd = r.array<32>();
  for (auto& reg : q.report.meas.rtmr)
    reg = MeasurementRegister::from_raw(r.array<32>());
  q.report.report_data = r.array<32>();
  q.signature = r.array<32>();
  q.attestation_key = r.array<32>();
  const std::uint32_t n_certs = r.u32();
  if (n_certs > 16) return std::nullopt;
  for (std::uint32_t i = 0; i < n_certs; ++i) {
    const std::uint32_t len = r.u32();
    std::vector<std::uint8_t> blob(len);
    if (!r.bytes(blob.data(), len)) return std::nullopt;
    auto cert = Certificate::deserialize(blob);
    if (!cert) return std::nullopt;
    q.pck_chain.push_back(std::move(*cert));
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return q;
}

TdxQuoteGenerator::TdxQuoteGenerator(const std::string& platform_tag)
    : root_(SimSigner::keygen("intel-root")),
      intermediate_(SimSigner::keygen("intel-platform-ca:" + platform_tag)),
      pck_(SimSigner::keygen("pck:" + platform_tag)),
      ak_(SimSigner::keygen("tdqe-ak:" + platform_tag)) {
  // Leaf-first chain: AK certified by PCK, PCK by the platform CA, the
  // platform CA by the Intel root (the root itself is the trust anchor and
  // is not shipped in the quote).
  chain_.push_back(issue_certificate("tdqe-ak", ak_, "pck", pck_));
  chain_.push_back(
      issue_certificate("pck", pck_, "intel-platform-ca", intermediate_));
  chain_.push_back(issue_certificate("intel-platform-ca", intermediate_,
                                     "intel-root", root_));
}

TdxQuote TdxQuoteGenerator::generate(const TdMeasurements& meas,
                                     const Digest& report_data) const {
  TdxQuote q;
  q.report.meas = meas;
  q.report.report_data = report_data;
  q.attestation_key = ak_.pub;
  q.pck_chain = chain_;
  q.signature = SimSigner::sign(ak_, q.signed_body());
  return q;
}

VerifyOutcome verify_tdx_quote(const TdxQuote& quote, const PubKey& root,
                               const std::vector<PubKey>& revoked,
                               const TdxVerifyPolicy& policy) {
  VerifyOutcome out;
  if (quote.tee_type != 0x81) {
    out.failure = "not a TDX quote";
    return out;
  }
  if (!verify_chain(quote.pck_chain, root, revoked)) {
    out.failure = "PCK certificate chain invalid or revoked";
    return out;
  }
  if (quote.pck_chain.empty() ||
      !digest_equal(quote.pck_chain.front().subject_key,
                    quote.attestation_key)) {
    out.failure = "attestation key not certified by chain";
    return out;
  }
  if (!SimSigner::verify(quote.attestation_key, quote.signed_body(),
                         quote.signature)) {
    out.failure = "quote signature invalid";
    return out;
  }
  if (quote.tcb_level < policy.min_tcb_level) {
    out.failure = "TCB level below policy";
    return out;
  }
  if (!digest_equal(quote.report.meas.compose(), policy.expected.compose())) {
    out.failure = "measurement mismatch";
    return out;
  }
  if (!digest_equal(quote.report.report_data, policy.expected_report_data)) {
    out.failure = "report_data (nonce) mismatch";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace confbench::attest

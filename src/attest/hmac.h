// HMAC-SHA256 (RFC 2104).
#pragma once

#include <vector>

#include "attest/sha256.h"

namespace confbench::attest {

/// Computes HMAC-SHA256(key, msg).
Digest hmac_sha256(const std::vector<std::uint8_t>& key, const void* msg,
                   std::size_t len);

inline Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                          const std::vector<std::uint8_t>& msg) {
  return hmac_sha256(key, msg.data(), msg.size());
}

/// Constant-time digest comparison.
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace confbench::attest

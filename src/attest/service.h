// End-to-end, timed attestation flows (Fig. 5).
//
// Splits each flow into the two phases the paper measures: "attest" (the
// guest obtains signed evidence) and "check" (a remote verifier validates
// it). All evidence crosses the attester/verifier boundary in serialized
// form, so codecs and signatures are exercised for real; time is charged
// from the platform's AttestationCosts with per-trial lognormal jitter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "attest/pcs.h"
#include "attest/quote.h"
#include "attest/report.h"
#include "sim/time.h"
#include "tee/platform.h"

namespace confbench::attest {

struct AttestTiming {
  sim::Ns attest_ns = 0;  ///< evidence generation latency
  sim::Ns check_ns = 0;   ///< verification latency
  bool ok = false;
  std::string failure;
};

class AttestationService {
 public:
  /// `image_tag` selects the golden guest image whose measurements both
  /// sides agree on.
  explicit AttestationService(std::string image_tag = "ubuntu-24.04-guest");

  /// Runs one TDX attest+verify round. `tamper` flips a byte of the
  /// serialized quote in flight (the outcome must then be !ok).
  AttestTiming run_tdx(const tee::Platform& platform, std::uint64_t trial,
                       bool tamper = false);

  /// Runs one SEV-SNP round.
  AttestTiming run_snp(const tee::Platform& platform, std::uint64_t trial,
                       bool tamper = false);

  /// Access to the simulated PCS (tests use it to revoke keys).
  PcsService& pcs() { return pcs_; }
  const TdxQuoteGenerator& tdx_generator() const { return tdx_gen_; }
  const SnpReportGenerator& snp_generator() const { return snp_gen_; }

 private:
  std::string image_tag_;
  TdxQuoteGenerator tdx_gen_;
  SnpReportGenerator snp_gen_;
  PcsService pcs_;
};

}  // namespace confbench::attest

#include "attest/bytes.h"

#include <cstring>

namespace confbench::attest {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}
void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}
void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}
void ByteWriter::bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}
void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

std::uint8_t ByteReader::u8() {
  if (pos_ + 1 > buf_.size()) {
    ok_ = false;
    return 0;
  }
  return buf_[pos_++];
}
std::uint16_t ByteReader::u16() {
  const std::uint16_t lo = u8();
  return static_cast<std::uint16_t>(lo | (std::uint16_t(u8()) << 8));
}
std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  return lo | (std::uint32_t(u16()) << 16);
}
std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  return lo | (std::uint64_t(u32()) << 32);
}
bool ByteReader::bytes(void* out, std::size_t len) {
  if (pos_ + len > buf_.size()) {
    ok_ = false;
    std::memset(out, 0, len);
    return false;
  }
  std::memcpy(out, buf_.data() + pos_, len);
  pos_ += len;
  return true;
}
std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (pos_ + n > buf_.size()) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace confbench::attest

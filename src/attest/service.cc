#include "attest/service.h"

#include "obs/trace.h"
#include "sim/rng.h"

namespace confbench::attest {

namespace {
constexpr double kAttestJitterSigma = 0.06;
constexpr double kNetworkJitterSigma = 0.18;  // WAN latencies vary widely

sim::Rng trial_rng(std::string_view flow, std::uint64_t trial) {
  return sim::Rng(
      sim::hash_combine(sim::stable_hash(std::string(flow)), trial));
}
}  // namespace

AttestationService::AttestationService(std::string image_tag)
    : image_tag_(std::move(image_tag)),
      tdx_gen_("xeon-5515p-host"),
      snp_gen_("epyc-9124-chip"),
      pcs_(tdx_gen_.intel_root()) {}

AttestTiming AttestationService::run_tdx(const tee::Platform& platform,
                                         std::uint64_t trial, bool tamper) {
  AttestTiming t;
  const tee::AttestationCosts costs = platform.attestation();
  if (!costs.supported) {
    t.failure = "attestation not supported on " + std::string(platform.name());
    return t;
  }
  auto rng = trial_rng("tdx-attest", trial);

  // --- attest phase: TDREPORT + quote generation -------------------------
  const TdMeasurements meas = golden_td_measurements(image_tag_);
  const Digest nonce =
      Sha256::hash("nonce:" + std::to_string(trial) + ":" + image_tag_);
  t.attest_ns = (costs.report_request + costs.measurement + costs.sign) *
                rng.jitter(kAttestJitterSigma);
  const TdxQuote quote = tdx_gen_.generate(meas, nonce);
  std::vector<std::uint8_t> wire = quote.serialize();
  if (tamper) wire[wire.size() / 2] ^= 0x40;

  // --- check phase: collateral fetch + verification ----------------------
  if (!pcs_.available()) {
    // PCS outage: every collateral fetch times out. Charge a conservative
    // client timeout per round trip and fail verification — the quote may
    // be genuine, but it cannot be checked.
    const sim::Ns timeout_ns =
        costs.collateral_round_trips * 10.0 * costs.collateral_rtt;
    obs::charge(obs::Category::kPcs, timeout_ns, costs.collateral_round_trips);
    t.check_ns = timeout_ns;
    t.failure = "pcs unavailable";
    return t;
  }
  sim::Ns pcs_ns = 0;
  for (int i = 0; i < costs.collateral_round_trips; ++i)
    pcs_ns += costs.collateral_rtt * rng.jitter(kNetworkJitterSigma);
  obs::charge(obs::Category::kPcs, pcs_ns, costs.collateral_round_trips);
  sim::Ns check = pcs_ns;
  check += costs.verify_compute * rng.jitter(kAttestJitterSigma);
  t.check_ns = check;

  const auto parsed = TdxQuote::deserialize(wire);
  if (!parsed) {
    t.failure = "quote failed to parse";
    return t;
  }
  const PcsCollateral coll = pcs_.fetch_collateral();
  TdxVerifyPolicy policy;
  policy.expected = meas;
  policy.expected_report_data = nonce;
  policy.min_tcb_level = coll.current_tcb;
  const VerifyOutcome v =
      verify_tdx_quote(*parsed, coll.root, coll.crl, policy);
  t.ok = v.ok;
  t.failure = v.failure;
  return t;
}

AttestTiming AttestationService::run_snp(const tee::Platform& platform,
                                         std::uint64_t trial, bool tamper) {
  AttestTiming t;
  const tee::AttestationCosts costs = platform.attestation();
  if (!costs.supported) {
    t.failure = "attestation not supported on " + std::string(platform.name());
    return t;
  }
  auto rng = trial_rng("snp-attest", trial);

  // --- attest phase: MSG_REPORT_REQ to the AMD-SP -------------------------
  const SnpMeasurements meas = golden_snp_measurements(image_tag_);
  const Digest nonce =
      Sha256::hash("snp-nonce:" + std::to_string(trial) + ":" + image_tag_);
  t.attest_ns = (costs.report_request + costs.measurement + costs.sign) *
                rng.jitter(kAttestJitterSigma);
  const SnpReport report = snp_gen_.generate(meas, nonce);
  std::vector<std::uint8_t> wire = report.serialize();
  if (tamper) wire[wire.size() / 3] ^= 0x08;

  // --- check phase: local cert retrieval + 3-step verification -----------
  t.check_ns = (costs.collateral_local_fetch + costs.verify_compute) *
               rng.jitter(kAttestJitterSigma);

  const auto parsed = SnpReport::deserialize(wire);
  if (!parsed) {
    t.failure = "report failed to parse";
    return t;
  }
  SnpVerifyPolicy policy;
  policy.expected = meas;
  policy.expected_report_data = nonce;
  const SnpVerifyOutcome v = verify_snp_report(
      *parsed, snp_gen_.cert_chain(), snp_gen_.ark(), policy);
  t.ok = v.ok;
  t.failure = v.failure;
  return t;
}

}  // namespace confbench::attest

// SEV-SNP attestation report (snpguest-shaped).
//
// The guest sends MSG_REPORT_REQ to the AMD Secure Processor, which returns
// a report signed with the chip-unique VCEK. Verification walks the
// ARK -> ASK -> VCEK chain — retrieved from the platform itself via the
// extended report, not the network — then checks the report signature and
// launch measurement ([46], [50]).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "attest/measurement.h"
#include "attest/signer.h"

namespace confbench::attest {

struct SnpReport {
  std::uint32_t version = 2;
  std::uint8_t vmpl = 0;
  std::uint64_t guest_svn = 3;
  std::uint64_t platform_tcb = 7;
  SnpMeasurements meas;
  Digest report_data{};
  Digest chip_id{};
  Signature signature{};  ///< VCEK signature over the body

  [[nodiscard]] std::vector<std::uint8_t> signed_body() const;
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<SnpReport> deserialize(
      const std::vector<std::uint8_t>& buf);
};

/// The AMD-SP firmware side.
class SnpReportGenerator {
 public:
  explicit SnpReportGenerator(const std::string& chip_tag);

  [[nodiscard]] SnpReport generate(const SnpMeasurements& meas,
                                   const Digest& report_data) const;

  /// The extended-report certificate chain (VCEK -> ASK), exposed by the
  /// platform so verification needs no network.
  [[nodiscard]] const std::vector<Certificate>& cert_chain() const {
    return chain_;
  }
  [[nodiscard]] const PubKey& ark() const { return ark_.pub; }

 private:
  Keypair ark_;   ///< AMD Root Key (trust anchor)
  Keypair ask_;   ///< AMD Signing Key
  Keypair vcek_;  ///< chip + TCB-specific key
  Digest chip_id_{};
  std::vector<Certificate> chain_;
};

struct SnpVerifyPolicy {
  SnpMeasurements expected;
  Digest expected_report_data{};
  std::uint64_t min_tcb = 7;
};

struct SnpVerifyOutcome {
  bool ok = false;
  std::string failure;
};

SnpVerifyOutcome verify_snp_report(const SnpReport& report,
                                   const std::vector<Certificate>& chain,
                                   const PubKey& ark,
                                   const SnpVerifyPolicy& policy);

}  // namespace confbench::attest

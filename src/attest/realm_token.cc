#include "attest/realm_token.h"

#include "attest/bytes.h"
#include "attest/hmac.h"

namespace confbench::attest {

std::vector<std::uint8_t> PlatformToken::signed_body() const {
  ByteWriter w;
  w.u16(profile);
  w.array(platform_measurement);
  w.array(rak_pub_hash);
  w.u8(lifecycle);
  return w.take();
}

std::vector<std::uint8_t> RealmToken::signed_body() const {
  ByteWriter w;
  w.array(meas.rim);
  for (const auto& r : meas.rem) w.array(r.value());
  w.array(personalization);
  w.array(challenge);
  return w.take();
}

std::vector<std::uint8_t> CcaToken::serialize() const {
  ByteWriter w;
  w.u16(platform.profile);
  w.array(platform.platform_measurement);
  w.array(platform.rak_pub_hash);
  w.u8(platform.lifecycle);
  w.array(platform.signature);
  w.array(realm.meas.rim);
  for (const auto& r : realm.meas.rem) w.array(r.value());
  w.array(realm.personalization);
  w.array(realm.challenge);
  w.array(realm.signature);
  w.array(rak_pub);
  w.u32(static_cast<std::uint32_t>(cpak_chain.size()));
  for (const auto& c : cpak_chain) {
    const auto blob = c.serialize();
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.bytes(blob);
  }
  return w.take();
}

std::optional<CcaToken> CcaToken::deserialize(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  CcaToken t;
  t.platform.profile = r.u16();
  t.platform.platform_measurement = r.array<32>();
  t.platform.rak_pub_hash = r.array<32>();
  t.platform.lifecycle = r.u8();
  t.platform.signature = r.array<32>();
  t.realm.meas.rim = r.array<32>();
  for (auto& reg : t.realm.meas.rem)
    reg = MeasurementRegister::from_raw(r.array<32>());
  t.realm.personalization = r.array<32>();
  t.realm.challenge = r.array<32>();
  t.realm.signature = r.array<32>();
  t.rak_pub = r.array<32>();
  const std::uint32_t n = r.u32();
  if (n > 8) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = r.u32();
    std::vector<std::uint8_t> blob(len);
    if (!r.bytes(blob.data(), len)) return std::nullopt;
    auto cert = Certificate::deserialize(blob);
    if (!cert) return std::nullopt;
    t.cpak_chain.push_back(std::move(*cert));
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return t;
}

CcaTokenGenerator::CcaTokenGenerator(const std::string& platform_tag)
    : root_(SimSigner::keygen("arm-cca-root")),
      cpak_(SimSigner::keygen("cpak:" + platform_tag)),
      rak_(SimSigner::keygen("rak:" + platform_tag)),
      platform_measurement_(Sha256::hash("cca-fw:" + platform_tag)) {
  chain_.push_back(issue_certificate("cpak", cpak_, "arm-cca-root", root_));
}

CcaToken CcaTokenGenerator::generate(const RealmMeasurements& meas,
                                     const Digest& challenge,
                                     const Digest& personalization) const {
  CcaToken t;
  t.platform.platform_measurement = platform_measurement_;
  t.platform.rak_pub_hash =
      Sha256::hash(rak_.pub.data(), rak_.pub.size());
  t.platform.signature = SimSigner::sign(cpak_, t.platform.signed_body());
  t.realm.meas = meas;
  t.realm.personalization = personalization;
  t.realm.challenge = challenge;
  t.realm.signature = SimSigner::sign(rak_, t.realm.signed_body());
  t.rak_pub = rak_.pub;
  t.cpak_chain = chain_;
  return t;
}

CcaVerifyOutcome verify_cca_token(const CcaToken& token, const PubKey& root,
                                  const CcaVerifyPolicy& policy) {
  CcaVerifyOutcome out;
  // 1. Platform trust: CPAK chain to the Arm root.
  if (!verify_chain(token.cpak_chain, root, /*revoked=*/{})) {
    out.failure = "CPAK certificate chain invalid";
    return out;
  }
  if (token.cpak_chain.empty() ||
      !SimSigner::verify(token.cpak_chain.front().subject_key,
                         token.platform.signed_body(),
                         token.platform.signature)) {
    out.failure = "platform token signature invalid";
    return out;
  }
  if (!digest_equal(token.platform.platform_measurement,
                    policy.expected_platform_measurement)) {
    out.failure = "platform measurement mismatch";
    return out;
  }
  // 2. Key binding: the RAK must be the one the platform vouched for.
  if (!digest_equal(
          Sha256::hash(token.rak_pub.data(), token.rak_pub.size()),
          token.platform.rak_pub_hash)) {
    out.failure = "RAK not bound to the platform token";
    return out;
  }
  // 3. Realm evidence under the RAK.
  if (!SimSigner::verify(token.rak_pub, token.realm.signed_body(),
                         token.realm.signature)) {
    out.failure = "realm token signature invalid";
    return out;
  }
  if (!digest_equal(token.realm.meas.compose(), policy.expected.compose())) {
    out.failure = "realm measurement mismatch";
    return out;
  }
  if (!digest_equal(token.realm.challenge, policy.expected_challenge)) {
    out.failure = "challenge (nonce) mismatch";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace confbench::attest

// SHA-256 (FIPS 180-4).
//
// A real, self-contained implementation: attestation structures are hashed
// and their digests actually checked during verification, so tampering with
// a serialised quote makes verification fail in tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace confbench::attest {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(const std::vector<std::uint8_t>& v) {
    update(v.data(), v.size());
  }
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Finalises and returns the digest; the object must not be reused.
  Digest finalize();

  static Digest hash(const void* data, std::size_t len);
  static Digest hash(const std::vector<std::uint8_t>& v) {
    return hash(v.data(), v.size());
  }
  static Digest hash(const std::string& s) { return hash(s.data(), s.size()); }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_len_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  bool finalized_ = false;
};

/// Lower-case hex encoding of a digest.
std::string to_hex(const Digest& d);

}  // namespace confbench::attest

// TDX quote structures (DCAP-shaped).
//
// A TD requests a TDREPORT via TDCALL; the host-side Quoting Enclave turns
// it into a quote signed with the PCK-certified attestation key. The
// verifier checks the PCK chain against the Intel root, TCB status from the
// PCS, CRLs, and finally the quote signature and measurement policy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "attest/measurement.h"
#include "attest/signer.h"

namespace confbench::attest {

struct TdReport {
  std::uint32_t version = 4;
  TdMeasurements meas;
  Digest report_data{};  ///< user-supplied nonce / freshness binding

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
};

struct TdxQuote {
  std::uint16_t header_version = 4;
  std::uint32_t tee_type = 0x81;  ///< TDX
  std::uint16_t tcb_level = 5;    ///< platform TCB as attested
  TdReport report;
  Signature signature{};          ///< attestation-key signature over body
  PubKey attestation_key{};
  std::vector<Certificate> pck_chain;  ///< PCK -> Intel intermediate

  /// The signed body (header + report + tcb).
  [[nodiscard]] std::vector<std::uint8_t> signed_body() const;
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<TdxQuote> deserialize(
      const std::vector<std::uint8_t>& buf);
};

/// The platform-side quote generation machinery (TDX module + QE).
class TdxQuoteGenerator {
 public:
  /// `platform_tag` seeds the PCK hierarchy; quotes from the same platform
  /// share keys, like real machines.
  explicit TdxQuoteGenerator(const std::string& platform_tag);

  [[nodiscard]] TdxQuote generate(const TdMeasurements& meas,
                                  const Digest& report_data) const;

  [[nodiscard]] const PubKey& intel_root() const { return root_.pub; }

 private:
  Keypair root_;          ///< Intel SGX/TDX root CA (trust anchor)
  Keypair intermediate_;  ///< platform CA
  Keypair pck_;           ///< per-platform PCK
  Keypair ak_;            ///< QE attestation key (certified by PCK)
  std::vector<Certificate> chain_;
};

/// Verification policy + result.
struct TdxVerifyPolicy {
  TdMeasurements expected;
  Digest expected_report_data{};
  std::uint16_t min_tcb_level = 5;
};

struct VerifyOutcome {
  bool ok = false;
  std::string failure;  ///< empty on success
};

/// Pure verification logic (no timing); collateral (root key + CRLs) is
/// passed in by the service layer, which charges PCS round trips.
VerifyOutcome verify_tdx_quote(const TdxQuote& quote, const PubKey& root,
                               const std::vector<PubKey>& revoked,
                               const TdxVerifyPolicy& policy);

}  // namespace confbench::attest

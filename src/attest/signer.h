// Simulated digital signatures and certificate chains.
//
// DESIGN.md §10: we do not ship real ECDSA. SimSigner provides keypairs with
// public-key *semantics* — sign with the secret, verify with the public key
// — implemented as HMAC over the message with the secret key, where a
// process-global authority maps public-key ids to their secrets for
// verification. The trust topology (roots of trust, intermediate and leaf
// certificates, revocation lists, what exactly is signed) is faithful, and
// any bit-flip in a signed message makes verification fail for real.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "attest/bytes.h"
#include "attest/sha256.h"

namespace confbench::attest {

/// Public key identifier (32 bytes, derived from the secret).
using PubKey = Digest;
using Signature = Digest;

struct Keypair {
  PubKey pub{};
  std::vector<std::uint8_t> secret;
};

class SimSigner {
 public:
  /// Deterministically derives a keypair from a seed label (e.g.
  /// "intel-root", "amd-ark") and registers it with the verification
  /// authority.
  static Keypair keygen(const std::string& seed_label);

  static Signature sign(const Keypair& kp, const void* msg, std::size_t len);
  static Signature sign(const Keypair& kp,
                        const std::vector<std::uint8_t>& msg) {
    return sign(kp, msg.data(), msg.size());
  }

  /// Verifies `sig` over `msg` against `pub`. Unknown keys fail.
  static bool verify(const PubKey& pub, const void* msg, std::size_t len,
                     const Signature& sig);
  static bool verify(const PubKey& pub, const std::vector<std::uint8_t>& msg,
                     const Signature& sig) {
    return verify(pub, msg.data(), msg.size(), sig);
  }
};

/// An X.509-like certificate: binds a subject key to a name, signed by an
/// issuer key.
struct Certificate {
  std::string subject;
  PubKey subject_key{};
  std::string issuer;
  PubKey issuer_key{};
  Signature signature{};  ///< issuer's signature over (subject, subject_key)

  [[nodiscard]] std::vector<std::uint8_t> tbs() const;  ///< to-be-signed blob
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<Certificate> deserialize(
      const std::vector<std::uint8_t>& buf);
};

/// Issues a certificate for `subject_kp` signed by `issuer_kp`.
Certificate issue_certificate(const std::string& subject,
                              const Keypair& subject_kp,
                              const std::string& issuer,
                              const Keypair& issuer_kp);

/// Verifies a chain leaf-first: chain[i] must be signed by chain[i+1]'s
/// subject key, and the last certificate must be signed by `root` (a trust
/// anchor, typically self-signed). `revoked` lists revoked subject keys.
bool verify_chain(const std::vector<Certificate>& chain, const PubKey& root,
                  const std::vector<PubKey>& revoked);

}  // namespace confbench::attest

#include "attest/report.h"

#include "attest/hmac.h"

namespace confbench::attest {

std::vector<std::uint8_t> SnpReport::signed_body() const {
  ByteWriter w;
  w.u32(version);
  w.u8(vmpl);
  w.u64(guest_svn);
  w.u64(platform_tcb);
  w.array(meas.launch_digest);
  w.array(meas.host_data);
  w.array(report_data);
  w.array(chip_id);
  return w.take();
}

std::vector<std::uint8_t> SnpReport::serialize() const {
  ByteWriter w;
  w.bytes(signed_body());
  w.array(signature);
  return w.take();
}

std::optional<SnpReport> SnpReport::deserialize(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  SnpReport rep;
  rep.version = r.u32();
  rep.vmpl = r.u8();
  rep.guest_svn = r.u64();
  rep.platform_tcb = r.u64();
  rep.meas.launch_digest = r.array<32>();
  rep.meas.host_data = r.array<32>();
  rep.report_data = r.array<32>();
  rep.chip_id = r.array<32>();
  rep.signature = r.array<32>();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return rep;
}

SnpReportGenerator::SnpReportGenerator(const std::string& chip_tag)
    : ark_(SimSigner::keygen("amd-ark")),
      ask_(SimSigner::keygen("amd-ask")),
      vcek_(SimSigner::keygen("vcek:" + chip_tag)),
      chip_id_(Sha256::hash("chip:" + chip_tag)) {
  chain_.push_back(issue_certificate("vcek", vcek_, "amd-ask", ask_));
  chain_.push_back(issue_certificate("amd-ask", ask_, "amd-ark", ark_));
}

SnpReport SnpReportGenerator::generate(const SnpMeasurements& meas,
                                       const Digest& report_data) const {
  SnpReport rep;
  rep.meas = meas;
  rep.report_data = report_data;
  rep.chip_id = chip_id_;
  rep.signature = SimSigner::sign(vcek_, rep.signed_body());
  return rep;
}

SnpVerifyOutcome verify_snp_report(const SnpReport& report,
                                   const std::vector<Certificate>& chain,
                                   const PubKey& ark,
                                   const SnpVerifyPolicy& policy) {
  SnpVerifyOutcome out;
  // Step 1 of the snpguest flow: validate the certificate chain.
  if (!verify_chain(chain, ark, /*revoked=*/{})) {
    out.failure = "VCEK chain invalid";
    return out;
  }
  if (chain.empty() || chain.front().subject != "vcek") {
    out.failure = "leaf is not a VCEK certificate";
    return out;
  }
  // Step 2: report signature under the VCEK.
  if (!SimSigner::verify(chain.front().subject_key, report.signed_body(),
                         report.signature)) {
    out.failure = "report signature invalid";
    return out;
  }
  // Step 3: policy checks (TCB + measurement + nonce).
  if (report.platform_tcb < policy.min_tcb) {
    out.failure = "platform TCB below policy";
    return out;
  }
  if (!digest_equal(report.meas.compose(), policy.expected.compose())) {
    out.failure = "launch measurement mismatch";
    return out;
  }
  if (!digest_equal(report.report_data, policy.expected_report_data)) {
    out.failure = "report_data (nonce) mismatch";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace confbench::attest

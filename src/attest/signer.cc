#include "attest/signer.h"

#include "attest/hmac.h"

namespace confbench::attest {

namespace {
/// Global verification authority: pub -> secret. Guarded for safety even
/// though the simulation is single-threaded today.
class Authority {
 public:
  static Authority& instance() {
    static Authority a;
    return a;
  }
  void put(const PubKey& pub, std::vector<std::uint8_t> secret) {
    std::lock_guard<std::mutex> lk(mu_);
    keys_[pub] = std::move(secret);
  }
  std::optional<std::vector<std::uint8_t>> get(const PubKey& pub) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = keys_.find(pub);
    if (it == keys_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::mutex mu_;
  std::map<PubKey, std::vector<std::uint8_t>> keys_;
};
}  // namespace

Keypair SimSigner::keygen(const std::string& seed_label) {
  Keypair kp;
  const Digest d = Sha256::hash("confbench-key:" + seed_label);
  kp.secret.assign(d.begin(), d.end());
  Sha256 h;
  h.update("pub:", 4);
  h.update(kp.secret.data(), kp.secret.size());
  kp.pub = h.finalize();
  Authority::instance().put(kp.pub, kp.secret);
  return kp;
}

Signature SimSigner::sign(const Keypair& kp, const void* msg,
                          std::size_t len) {
  return hmac_sha256(kp.secret, msg, len);
}

bool SimSigner::verify(const PubKey& pub, const void* msg, std::size_t len,
                       const Signature& sig) {
  const auto secret = Authority::instance().get(pub);
  if (!secret) return false;
  const Signature expect = hmac_sha256(*secret, msg, len);
  return digest_equal(expect, sig);
}

std::vector<std::uint8_t> Certificate::tbs() const {
  ByteWriter w;
  w.str(subject);
  w.array(subject_key);
  w.str(issuer);
  return w.take();
}

std::vector<std::uint8_t> Certificate::serialize() const {
  ByteWriter w;
  w.str(subject);
  w.array(subject_key);
  w.str(issuer);
  w.array(issuer_key);
  w.array(signature);
  return w.take();
}

std::optional<Certificate> Certificate::deserialize(
    const std::vector<std::uint8_t>& buf) {
  ByteReader r(buf);
  Certificate c;
  c.subject = r.str();
  c.subject_key = r.array<32>();
  c.issuer = r.str();
  c.issuer_key = r.array<32>();
  c.signature = r.array<32>();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return c;
}

Certificate issue_certificate(const std::string& subject,
                              const Keypair& subject_kp,
                              const std::string& issuer,
                              const Keypair& issuer_kp) {
  Certificate c;
  c.subject = subject;
  c.subject_key = subject_kp.pub;
  c.issuer = issuer;
  c.issuer_key = issuer_kp.pub;
  c.signature = SimSigner::sign(issuer_kp, c.tbs());
  return c;
}

bool verify_chain(const std::vector<Certificate>& chain, const PubKey& root,
                  const std::vector<PubKey>& revoked) {
  if (chain.empty()) return false;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& c = chain[i];
    for (const PubKey& r : revoked) {
      if (digest_equal(c.subject_key, r)) return false;
    }
    const PubKey expected_issuer =
        (i + 1 < chain.size()) ? chain[i + 1].subject_key : root;
    if (!digest_equal(c.issuer_key, expected_issuer)) return false;
    if (!SimSigner::verify(c.issuer_key, c.tbs(), c.signature)) return false;
  }
  return true;
}

}  // namespace confbench::attest

#include "attest/measurement.h"

namespace confbench::attest {

void MeasurementRegister::extend(const Digest& event) {
  Sha256 h;
  h.update(value_.data(), value_.size());
  h.update(event.data(), event.size());
  value_ = h.finalize();
}

void MeasurementRegister::extend(const std::string& event_data) {
  extend(Sha256::hash(event_data));
}

Digest TdMeasurements::compose() const {
  Sha256 h;
  h.update(mrtd.data(), mrtd.size());
  for (const auto& r : rtmr) h.update(r.value().data(), r.value().size());
  return h.finalize();
}

Digest SnpMeasurements::compose() const {
  Sha256 h;
  h.update(launch_digest.data(), launch_digest.size());
  h.update(host_data.data(), host_data.size());
  return h.finalize();
}

Digest RealmMeasurements::compose() const {
  Sha256 h;
  h.update(rim.data(), rim.size());
  for (const auto& r : rem) h.update(r.value().data(), r.value().size());
  return h.finalize();
}

TdMeasurements golden_td_measurements(const std::string& image_tag) {
  TdMeasurements m;
  m.mrtd = Sha256::hash("tdx-mrtd:" + image_tag);
  m.rtmr[0].extend("kernel:" + image_tag);
  m.rtmr[1].extend("initrd:" + image_tag);
  m.rtmr[2].extend("cmdline:" + image_tag);
  // rtmr[3] is left for application use, zero by default.
  return m;
}

SnpMeasurements golden_snp_measurements(const std::string& image_tag) {
  SnpMeasurements m;
  m.launch_digest = Sha256::hash("snp-launch:" + image_tag);
  m.host_data = Sha256::hash("snp-hostdata:" + image_tag);
  return m;
}

RealmMeasurements golden_realm_measurements(const std::string& image_tag) {
  RealmMeasurements m;
  m.rim = Sha256::hash("cca-rim:" + image_tag);
  m.rem[0].extend("realm-kernel:" + image_tag);
  return m;
}

}  // namespace confbench::attest

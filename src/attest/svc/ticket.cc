#include "attest/svc/ticket.h"

#include "obs/registry.h"

namespace confbench::attest::svc {

std::string_view to_string(TicketInvalidation why) {
  switch (why) {
    case TicketInvalidation::kRevocation:
      return "revocation";
    case TicketInvalidation::kMigration:
      return "migration";
    case TicketInvalidation::kReboot:
      return "reboot";
  }
  return "?";
}

void TicketTable::mint(std::uint64_t subject, sim::Ns now) {
  if (ttl_ns_ <= 0) return;
  tickets_[subject] = now;
  ++minted_;
}

bool TicketTable::resume(std::uint64_t subject, sim::Ns now) {
  const auto it = tickets_.find(subject);
  if (it == tickets_.end()) return false;
  if (now < it->second + ttl_ns_) {
    ++resumed_;
    return true;
  }
  // Strict expiry: a ticket ending exactly now is already dead.
  tickets_.erase(it);
  ++expired_;
  return false;
}

bool TicketTable::valid(std::uint64_t subject, sim::Ns now) const {
  const auto it = tickets_.find(subject);
  return it != tickets_.end() && now < it->second + ttl_ns_;
}

void TicketTable::invalidate(std::uint64_t subject, TicketInvalidation why) {
  if (tickets_.erase(subject) > 0)
    ++invalidated_[static_cast<std::size_t>(why)];
}

void TicketTable::invalidate_all(TicketInvalidation why) {
  invalidated_[static_cast<std::size_t>(why)] += tickets_.size();
  tickets_.clear();
}

std::uint64_t TicketTable::invalidated(TicketInvalidation why) const {
  return invalidated_[static_cast<std::size_t>(why)];
}

std::uint64_t TicketTable::invalidated_total() const {
  return invalidated_[0] + invalidated_[1] + invalidated_[2];
}

void TicketTable::publish(obs::Registry& reg,
                          const std::string& prefix) const {
  reg.counter(prefix + ".mint") += minted_;
  reg.counter(prefix + ".resume") += resumed_;
  reg.counter(prefix + ".expire") += expired_;
  for (const auto why :
       {TicketInvalidation::kRevocation, TicketInvalidation::kMigration,
        TicketInvalidation::kReboot})
    reg.counter(prefix + ".invalidate." + std::string(to_string(why))) +=
        invalidated(why);
}

}  // namespace confbench::attest::svc

// Session-ticket resumption for repeat attestation verifications.
//
// The first successful verification of a subject (a replica, or a shard's
// slice evidence bundle) mints a ticket: a MAC'd statement "subject S
// verified OK at T, valid until T + ttl". A repeat verification of a
// ticketed subject pays only the ticket check (~µs) instead of a full
// quote round (~1.46 s cold on TDX) — the TLS-session-resumption idea
// applied to attestation, and the mechanism that makes steady-state
// cross-shard crossings approach intra-shard cost.
//
// Tickets are *capabilities over stale evidence*, so everything that
// invalidates the evidence invalidates the ticket immediately:
//
//   kRevocation  a signing key was revoked — every outstanding ticket in
//                the table may chain to it, so all are dropped;
//   kMigration   the subject live-migrated — the TDX migration security
//                model requires a fresh verification on the target before
//                traffic is admitted; a ticket must not bypass it;
//   kReboot      the subject crashed or rebooted — its launch measurement
//                may have changed, the old evidence proves nothing.
//
// Expiry is strict: a ticket whose TTL ends exactly at the crossing
// instant is already invalid (now < expiry, not <=) — the race the ticket
// lifecycle tests pin down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace confbench::obs {
class Registry;
}

namespace confbench::attest::svc {

enum class TicketInvalidation : std::uint8_t {
  kRevocation,
  kMigration,
  kReboot,
};

std::string_view to_string(TicketInvalidation why);

class TicketTable {
 public:
  /// `ttl_ns` <= 0 disables tickets: mint() is a no-op and resume() always
  /// fails (the cold baseline configuration).
  explicit TicketTable(sim::Ns ttl_ns) : ttl_ns_(ttl_ns) {}

  /// Mints (or refreshes) the subject's ticket at virtual time `now`.
  void mint(std::uint64_t subject, sim::Ns now);

  /// Attempts resumption at `now`: true only for a live ticket
  /// (now strictly before mint + ttl). An expired ticket is erased on the
  /// spot and counted as an expiry, not an invalidation.
  bool resume(std::uint64_t subject, sim::Ns now);

  /// Non-counting peek at resumability.
  [[nodiscard]] bool valid(std::uint64_t subject, sim::Ns now) const;

  /// Drops the subject's ticket for `why`; counted per reason. No-op
  /// (and uncounted) when the subject holds no ticket.
  void invalidate(std::uint64_t subject, TicketInvalidation why);

  /// Drops every ticket (revocation storms): each live ticket counts one
  /// invalidation of `why`.
  void invalidate_all(TicketInvalidation why);

  [[nodiscard]] std::size_t size() const { return tickets_.size(); }
  [[nodiscard]] std::uint64_t minted() const { return minted_; }
  [[nodiscard]] std::uint64_t resumed() const { return resumed_; }
  [[nodiscard]] std::uint64_t expired() const { return expired_; }
  [[nodiscard]] std::uint64_t invalidated(TicketInvalidation why) const;
  [[nodiscard]] std::uint64_t invalidated_total() const;

  /// Publishes `<prefix>.mint/resume/expire` plus one
  /// `<prefix>.invalidate.<reason>` counter per reason.
  void publish(obs::Registry& reg, const std::string& prefix) const;

 private:
  sim::Ns ttl_ns_;
  std::map<std::uint64_t, sim::Ns> tickets_;  ///< subject -> minted_at
  std::uint64_t minted_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t invalidated_[3] = {0, 0, 0};  ///< per TicketInvalidation
};

}  // namespace confbench::attest::svc

#include "attest/svc/cost_model.h"

#include <algorithm>
#include <stdexcept>

#include "attest/service.h"
#include "tee/registry.h"

namespace confbench::attest::svc {

namespace {

/// SVSM-hosted vTPM path (SNP): the vTPM runs at VMPL0 inside the guest,
/// so a quote is a local TPM2_Quote against an AK whose binding to the SNP
/// report was verified once at provisioning. Costs are quote generation in
/// the paravisor plus local signature verification — no AMD-SP message,
/// no cert chain walk.
constexpr sim::Ns kEvtpmQuoteNs = 21 * sim::kMs;
constexpr sim::Ns kEvtpmVerifyNs = 2.5 * sim::kMs;

}  // namespace

sim::Ns CostModel::warm_verify_ns() const {
  if (!supported) return 0;
  return std::clamp<sim::Ns>(evidence_ns + verify_ns, 0, full_round_ns);
}

CostModel CostModel::measure(const tee::Platform& plat) {
  CostModel m;
  m.platform = std::string(plat.name());
  const tee::AttestationCosts ac = plat.attestation();
  m.supported = ac.supported;
  if (!ac.supported) return m;

  // Jitter-free decomposition from the declared cost table.
  m.evidence_ns = ac.report_request + ac.measurement + ac.sign;
  m.collateral_ns = ac.collateral_round_trips * ac.collateral_rtt;
  m.verify_ns = ac.collateral_local_fetch + ac.verify_compute;

  // The end-to-end round through the real evidence + verification flow at
  // trial 0 — exactly what the pre-service call sites charged.
  AttestationService flow;
  AttestTiming t;
  switch (plat.kind()) {
    case tee::TeeKind::kTdx:
      t = flow.run_tdx(plat, /*trial=*/0);
      break;
    case tee::TeeKind::kSevSnp:
      t = flow.run_snp(plat, /*trial=*/0);
      m.evtpm_available = true;
      m.evtpm_round_ns = kEvtpmQuoteNs + kEvtpmVerifyNs;
      break;
    default:
      // No end-to-end flow modelled for this TEE: fall back to the
      // platform's declared cost table.
      t.attest_ns = m.evidence_ns;
      t.check_ns = m.collateral_ns + m.verify_ns;
      t.ok = true;
      break;
  }
  m.full_round_ns = t.ok ? t.attest_ns + t.check_ns : 0;
  return m;
}

CostModel CostModel::measure(const std::string& platform) {
  const tee::PlatformPtr plat = tee::Registry::instance().create(platform);
  if (!plat)
    throw std::invalid_argument("CostModel::measure: unknown platform '" +
                                platform + "'");
  return measure(*plat);
}

}  // namespace confbench::attest::svc

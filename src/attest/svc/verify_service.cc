#include "attest/svc/verify_service.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/registry.h"

namespace confbench::attest::svc {

std::string_view to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::kFull:
      return "full";
    case VerifyMode::kEvtpm:
      return "evtpm";
  }
  return "?";
}

std::string_view to_string(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kVerified:
      return "verified";
    case VerifyStatus::kResumed:
      return "resumed";
    case VerifyStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case VerifyStatus::kCollateralUnavailable:
      return "collateral-unavailable";
    case VerifyStatus::kQueueFull:
      return "queue-full";
  }
  return "?";
}

VerifyService::VerifyService(const VerifyConfig& cfg, CostModel model,
                             NowFn now, ScheduleAt at,
                             std::vector<std::pair<sim::Ns, sim::Ns>> outages)
    : cfg_(cfg),
      model_(std::move(model)),
      now_(std::move(now)),
      at_(std::move(at)),
      outages_(std::move(outages)),
      cache_(cfg.collateral_ttl_ns),
      tickets_(cfg.ticket_ttl_ns) {
  if (at_) {
    for (const sim::Ns t : cfg_.revoke_at)
      at_(t, [this] { on_revocation(); });
    for (const sim::Ns t : cfg_.tcb_recovery_at)
      at_(t, [this] { cache_.tcb_recovery(); });
  }
  if (!cfg_.prewarm_subjects.empty() && model_.supported) {
    cache_.insert(CollateralKey{model_.platform, 0}, 0);
    for (const std::uint64_t s : cfg_.prewarm_subjects) tickets_.mint(s, 0);
  }
}

bool VerifyService::outage_at(sim::Ns t) const {
  for (const auto& [s, e] : outages_)
    if (t >= s && t < e) return true;
  return false;
}

bool VerifyService::outage_overlaps(sim::Ns from, sim::Ns to) const {
  for (const auto& [s, e] : outages_)
    if (s < to && e > from) return true;
  return false;
}

void VerifyService::deliver(sim::Ns at_ns, VerifyStatus status,
                            const Callback& cb) {
  if (!cb) return;
  at_(at_ns, [status, at_ns, cb] { cb({status, at_ns}); });
}

void VerifyService::finish_request(const Pending& p, sim::Ns t) {
  if (p.deadline_ns > 0 && t > p.deadline_ns) {
    ++deadline_giveups_;
    deliver(std::max(now_(), p.deadline_ns), VerifyStatus::kDeadlineExceeded,
            p.cb);
    return;
  }
  tickets_.mint(p.subject, t);
  deliver(t, VerifyStatus::kVerified, p.cb);
}

void VerifyService::verify(std::uint64_t subject, std::uint16_t tcb,
                           sim::Ns deadline_ns, Callback cb) {
  if (!now_ || !at_)
    throw std::logic_error(
        "VerifyService::verify requires scheduling callables");
  const sim::Ns now = now_();
  // No attestation hardware (CCA/FVP): nothing to verify, nothing to pay.
  if (!model_.supported) {
    deliver(now, VerifyStatus::kVerified, cb);
    return;
  }
  if (tickets_.resume(subject, now)) {
    deliver(now + model_.ticket_check_ns, VerifyStatus::kResumed, cb);
    return;
  }
  if (static_cast<int>(pending_.size()) >= cfg_.max_queue) {
    ++queue_rejects_;
    deliver(now, VerifyStatus::kQueueFull, cb);
    return;
  }
  pending_.push_back({subject, tcb, deadline_ns, std::move(cb)});
  if (static_cast<int>(pending_.size()) >= cfg_.max_batch) {
    flush_batch();
    return;
  }
  if (pending_.size() == 1) {
    // First request opens the batch window; the epoch guard turns the
    // timer into a no-op when the batch already flushed via max_batch.
    const std::uint64_t epoch = batch_epoch_;
    at_(now + cfg_.batch_window_ns, [this, epoch] {
      if (epoch == batch_epoch_ && !pending_.empty()) flush_batch();
    });
  }
}

void VerifyService::flush_batch() {
  ++batch_epoch_;
  std::vector<Pending> batch;
  batch.swap(pending_);
  const sim::Ns now = now_();
  ++batches_;
  batched_ += batch.size();

  // e-vTPM mode: local TPM quote checks, no collateral, outage-immune.
  if (cfg_.mode == VerifyMode::kEvtpm && model_.evtpm_available) {
    for (const Pending& p : batch) {
      ++evtpm_;
      finish_request(p, now + model_.evtpm_round_ns);
    }
    return;
  }

  // One collateral fetch per distinct (platform, tcb) key, amortized over
  // every request in the batch that shares it. All fetches of the batch
  // run concurrently over [now, now + collateral_ns); an outage window
  // overlapping that interval — including one that opens mid-flight —
  // fails exactly the fetched keys, never the cache hits.
  struct KeyState {
    sim::Ns ready_ns = 0;
    bool failed = false;
  };
  std::map<std::uint16_t, KeyState> keys;
  for (const Pending& p : batch) {
    if (keys.count(p.tcb)) continue;
    KeyState st;
    // Effective level = caller's base + platform TCB-recovery offset: a
    // mid-run recovery shifts every later batch onto fresh keys, so the
    // old warm entries stop matching exactly as the real PCS would.
    const CollateralKey key{
        model_.platform,
        static_cast<std::uint16_t>(p.tcb + cache_.current_tcb())};
    if (cache_.lookup(key, now) == CacheOutcome::kHit) {
      // A hit against a fetch still in flight (a previous batch booked it)
      // waits for that fetch to land; a settled entry costs nothing.
      st.ready_ns = std::max(now, cache_.fetched_at(key));
    } else {
      ++fetches_;
      const sim::Ns fetch_end = now + model_.collateral_ns;
      if (outage_overlaps(now, fetch_end) ||
          (model_.collateral_ns <= 0 && outage_at(now))) {
        st.failed = true;
        ++fetch_failures_;
        st.ready_ns = fetch_end;  // the caller learns at the fetch timeout
      } else {
        st.ready_ns = fetch_end;
        cache_.insert(key, fetch_end);
      }
    }
    keys.emplace(p.tcb, st);
  }
  for (const Pending& p : batch) {
    const KeyState& st = keys.at(p.tcb);
    if (st.failed) {
      deliver(std::max(st.ready_ns, now), VerifyStatus::kCollateralUnavailable,
              p.cb);
      continue;
    }
    ++full_;
    finish_request(p, st.ready_ns + model_.warm_verify_ns());
  }
}

sim::Ns VerifyService::reverify_done_ns(sim::Ns start_ns, std::uint16_t tcb) {
  if (!model_.supported) return start_ns;
  if (cfg_.mode == VerifyMode::kEvtpm && model_.evtpm_available) {
    ++evtpm_;
    return start_ns + model_.evtpm_round_ns;
  }
  const CollateralKey key{
      model_.platform,
      static_cast<std::uint16_t>(tcb + cache_.current_tcb())};
  if (cache_.lookup(key, start_ns) == CacheOutcome::kHit) {
    ++full_;
    return std::max(start_ns, cache_.fetched_at(key)) +
           model_.warm_verify_ns();
  }
  // Cold: the fetch stalls behind any outage window it would start inside
  // (windows are time-ordered, so one pass resolves cascades).
  sim::Ns t = start_ns;
  for (const auto& [s, e] : outages_)
    if (t >= s && t < e) t = e;
  ++fetches_;
  const sim::Ns fetch_end = t + model_.collateral_ns;
  cache_.insert(key, fetch_end);
  ++full_;
  return fetch_end + model_.warm_verify_ns();
}

void VerifyService::on_reboot(std::uint64_t subject) {
  tickets_.invalidate(subject, TicketInvalidation::kReboot);
}

void VerifyService::on_migration(std::uint64_t subject) {
  tickets_.invalidate(subject, TicketInvalidation::kMigration);
}

void VerifyService::on_revocation() {
  ++revocations_;
  cache_.revoke(model_.platform);
  tickets_.invalidate_all(TicketInvalidation::kRevocation);
}

void VerifyService::publish(obs::Registry& reg,
                            const std::string& prefix) const {
  cache_.publish(reg, prefix + ".cache");
  tickets_.publish(reg, prefix + ".ticket");
  reg.counter(prefix + ".verify.full") += full_;
  reg.counter(prefix + ".verify.evtpm") += evtpm_;
  reg.counter(prefix + ".verify.batches") += batches_;
  reg.counter(prefix + ".verify.batched") += batched_;
  reg.counter(prefix + ".verify.fetch") += fetches_;
  reg.counter(prefix + ".verify.fetch_failed") += fetch_failures_;
  reg.counter(prefix + ".verify.deadline_giveups") += deadline_giveups_;
  reg.counter(prefix + ".verify.queue_rejects") += queue_rejects_;
  reg.counter(prefix + ".verify.revocations") += revocations_;
}

}  // namespace confbench::attest::svc

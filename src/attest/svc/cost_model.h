// Decomposed attestation cost model — the single pricing authority.
//
// Before this service existed, three call sites (crash recovery, live
// migration, shard cross-admission) each priced a re-attestation round by
// calling fault::measure_attest_ns directly, so any cost-model change had
// to be made three times. CostModel centralizes the pricing and, crucially,
// *decomposes* the round into the parts the verification service can skip
// or amortize:
//
//   evidence_ns    guest-side evidence generation (report + measure + sign)
//   collateral_ns  verifier-side collateral fetch (PCS round trips on TDX,
//                  local cert retrieval on SNP) — the cacheable part, and
//                  the only part an attestation-service outage can stall
//   verify_ns      verifier-side signature + TCB compute — always paid on
//                  a full verification, cache or no cache
//   full_round_ns  the whole attest+verify round, measured through the real
//                  attest::AttestationService flow at trial 0 — byte-for-
//                  byte the value the legacy call sites charged, so every
//                  pre-service bench output is preserved exactly
//
// plus the two cheap paths the service unlocks:
//
//   warm_verify_ns()  full verification with warm collateral: evidence +
//                     verify, no network — what a cache hit pays
//   ticket_check_ns   session-ticket resumption: one MAC check over the
//                     ticket plus a freshness lookup — what a repeat
//                     crossing to a ticketed subject pays
//   evtpm_round_ns    e-vTPM-backed verification (SNP only): once the SVSM
//                     vTPM's initial binding to an SNP report is verified,
//                     repeat verification is a TPM quote against the
//                     already-trusted vTPM AK — no AMD-SP round, no cert
//                     fetch (models the e-vTPM paper's path, PAPERS.md)
#pragma once

#include <string>

#include "sim/time.h"
#include "tee/platform.h"

namespace confbench::attest::svc {

struct CostModel {
  std::string platform;    ///< tee registry name ("tdx", "sev-snp", ...)
  bool supported = false;  ///< false: no attestation hardware (CCA/FVP)

  sim::Ns evidence_ns = 0;    ///< report request + measurement + sign
  sim::Ns collateral_ns = 0;  ///< network collateral fetch (cacheable)
  sim::Ns verify_ns = 0;      ///< local verify compute (+ local cert fetch)
  sim::Ns full_round_ns = 0;  ///< measured end-to-end round (legacy value)

  sim::Ns ticket_check_ns = 150 * sim::kUs;  ///< ticket MAC + freshness

  bool evtpm_available = false;  ///< SNP only: SVSM-hosted vTPM modeled
  sim::Ns evtpm_round_ns = 0;    ///< vTPM quote + local verify

  /// Full verification against warm collateral: everything but the
  /// network. Clamped into [0, full_round_ns] so a heavily jittered
  /// measured round can never make the warm path the more expensive one.
  [[nodiscard]] sim::Ns warm_verify_ns() const;

  /// Measures the model for one platform. `full_round_ns` runs the real
  /// AttestationService flow (identical to the pre-service
  /// fault::measure_attest_ns); the decomposed parts come from the
  /// platform's declared AttestationCosts table, jitter-free, so cache and
  /// ticket savings are deterministic.
  [[nodiscard]] static CostModel measure(const tee::Platform& plat);

  /// Registry-lookup convenience. Throws std::invalid_argument for an
  /// unknown platform name.
  [[nodiscard]] static CostModel measure(const std::string& platform);
};

}  // namespace confbench::attest::svc

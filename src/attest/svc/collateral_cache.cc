#include "attest/svc/collateral_cache.h"

#include "obs/registry.h"

namespace confbench::attest::svc {

std::string_view to_string(CacheOutcome o) {
  switch (o) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kStale:
      return "stale";
    case CacheOutcome::kMiss:
      return "miss";
  }
  return "?";
}

CacheOutcome CollateralCache::lookup(const CollateralKey& key, sim::Ns now) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return CacheOutcome::kMiss;
  }
  if (now < it->second + ttl_ns_) {
    ++hits_;
    return CacheOutcome::kHit;
  }
  ++stale_;
  return CacheOutcome::kStale;
}

void CollateralCache::insert(const CollateralKey& key, sim::Ns now) {
  if (ttl_ns_ <= 0) return;
  entries_[key] = now;
}

bool CollateralCache::warm(const CollateralKey& key, sim::Ns now) const {
  const auto it = entries_.find(key);
  return it != entries_.end() && now < it->second + ttl_ns_;
}

sim::Ns CollateralCache::fetched_at(const CollateralKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second;
}

std::size_t CollateralCache::revoke(const std::string& platform) {
  std::size_t flushed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.platform == platform) {
      it = entries_.erase(it);
      ++flushed;
    } else {
      ++it;
    }
  }
  revocation_flushes_ += flushed;
  return flushed;
}

std::uint16_t CollateralCache::tcb_recovery() {
  ++current_tcb_;
  ++tcb_recoveries_;
  return current_tcb_;
}

void CollateralCache::publish(obs::Registry& reg,
                              const std::string& prefix) const {
  reg.counter(prefix + ".hit") += hits_;
  reg.counter(prefix + ".miss") += misses_;
  reg.counter(prefix + ".stale") += stale_;
  reg.counter(prefix + ".revoked") += revocation_flushes_;
  reg.counter(prefix + ".tcb_recovery") += tcb_recoveries_;
}

}  // namespace confbench::attest::svc

// Shared attestation verification service: collateral cache + batched
// quote verification + session-ticket resumption.
//
// Sits between the cluster/shard fabric and the raw attest:: flows. The
// fabric's problem: a full re-attestation round on every cross-shard
// crossing (TDX ~1.46 s of PCS collateral) is untenable at production
// crossing rates. The service's answer, in descending order of savings:
//
//   1. session tickets — a subject verified once resumes for ~ticket-check
//      cost until TTL/revocation/migration/reboot (ticket.h);
//   2. collateral cache — an unticketed verification with warm collateral
//      skips the network share and pays only evidence + verify compute
//      (collateral_cache.h);
//   3. batching — concurrent unticketed verifications form a bounded
//      queue; one collateral fetch per (platform, tcb) key is amortized
//      across the whole batch instead of being paid per request.
//
// Verification requests are asynchronous: verify() books the work on the
// caller's event scheduler and delivers a VerifyOutcome at the priced
// completion time. Per-request deadlines produce kDeadlineExceeded
// give-ups at the deadline instant, which callers feed into their existing
// fault::RetryVerdict accounting.
//
// Outage semantics (the PR-3 kAttestOutage windows): an outage stalls or
// fails only collateral *fetches*. Ticket resumptions and cache hits are
// local operations and proceed — this is precisely what turns a PCS outage
// from a full attestation blackout into a cold-miss-only brownout. An
// outage that opens while a batch's fetch is in flight fails that fetch
// (and only the requests needing it); requests verifying against
// already-cached collateral in the same batch complete normally.
//
// Modes: kFull replays the platform's real quote-verification pricing;
// kEvtpm (SNP only) models the e-vTPM path — after the SVSM vTPM's AK is
// bound to an SNP report once, each verification is a local TPM quote
// check with no AMD-SP round and no collateral fetch at all, so it is
// outage-immune by construction.
//
// Determinism: the service draws no randomness; completion times are
// arithmetic over the CostModel, so runs embedding it stay byte-stable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "attest/svc/collateral_cache.h"
#include "attest/svc/cost_model.h"
#include "attest/svc/ticket.h"
#include "sim/time.h"

namespace confbench::obs {
class Registry;
}

namespace confbench::attest::svc {

enum class VerifyMode : std::uint8_t { kFull, kEvtpm };

std::string_view to_string(VerifyMode m);

struct VerifyConfig {
  /// Master switch consumed by embedders (sched::ShardedConfig): false
  /// preserves their legacy fixed-cost paths byte-for-byte.
  bool enabled = false;
  VerifyMode mode = VerifyMode::kFull;
  sim::Ns collateral_ttl_ns = 600 * sim::kSec;  ///< <= 0: cache disabled
  sim::Ns ticket_ttl_ns = 300 * sim::kSec;      ///< <= 0: tickets disabled
  /// A batch closes batch_window_ns after its first request arrives, or
  /// immediately when max_batch requests are pending.
  sim::Ns batch_window_ns = 2 * sim::kMs;
  int max_batch = 16;
  /// Bound on the verify queue: requests arriving beyond it are refused
  /// with kQueueFull instead of building an unbounded backlog.
  int max_queue = 256;
  /// Scheduled revocation events (virtual times): each flushes the
  /// collateral cache and invalidates every outstanding ticket mid-run.
  std::vector<sim::Ns> revoke_at;
  /// Scheduled TCB-recovery events (virtual times): each bumps the
  /// platform's current TCB level, so warm collateral keyed at the old
  /// level stops matching and the next crossing pays a fresh fetch at the
  /// new level. Softer than revoke_at — nothing is flushed or invalidated
  /// (tickets survive; old-level entries just stop being looked up).
  std::vector<sim::Ns> tcb_recovery_at;
  /// Subjects whose session tickets (and the tcb-0 collateral entry) are
  /// pre-established at t=0 — the steady-state entry point: the fabric ran
  /// before the measured window, so repeat crossings resume from the first
  /// event. Pre-minted tickets still expire, revoke, and invalidate like
  /// any other.
  std::vector<std::uint64_t> prewarm_subjects;
  /// Explicit cost model (tests, pre-measured sweeps). When
  /// cost.platform is empty, embedders measure it via CostModel::measure.
  CostModel cost;
};

enum class VerifyStatus : std::uint8_t {
  kVerified,               ///< full verification succeeded (ticket minted)
  kResumed,                ///< session ticket accepted
  kDeadlineExceeded,       ///< gave up waiting (feed RetryVerdict path)
  kCollateralUnavailable,  ///< fetch failed inside an attest-outage window
  kQueueFull,              ///< bounded verify queue refused the request
};

std::string_view to_string(VerifyStatus s);

struct VerifyOutcome {
  VerifyStatus status = VerifyStatus::kVerified;
  sim::Ns done_ns = 0;  ///< virtual completion time of the outcome
  [[nodiscard]] bool ok() const {
    return status == VerifyStatus::kVerified ||
           status == VerifyStatus::kResumed;
  }
};

/// The service. Scheduling is injected as two thin callables so the
/// service binds to sched::EventQueue (or any deterministic scheduler)
/// without attest:: depending on sched:: — synchronous users (migration
/// planning, recovery pricing) may pass null callables and use only
/// reverify_done_ns() and the fault hooks.
class VerifyService {
 public:
  using NowFn = std::function<sim::Ns()>;
  using ScheduleAt = std::function<void(sim::Ns, std::function<void()>)>;
  using Callback = std::function<void(const VerifyOutcome&)>;

  /// `outages` are the FaultPlan's attestation-outage windows [start, end),
  /// time-ordered (fault::FaultPlan::attest_outages()). Scheduled
  /// revocations (cfg.revoke_at) are booked onto `at` immediately when it
  /// is provided; the service must outlive the scheduler's run.
  VerifyService(const VerifyConfig& cfg, CostModel model, NowFn now,
                ScheduleAt at,
                std::vector<std::pair<sim::Ns, sim::Ns>> outages = {});

  /// Asynchronous verification of `subject` at TCB level `tcb`.
  /// `deadline_ns` (absolute, 0 = none) produces a kDeadlineExceeded
  /// outcome at the deadline when the priced completion would land after
  /// it. Requires scheduling callables; throws std::logic_error otherwise.
  void verify(std::uint64_t subject, std::uint16_t tcb, sim::Ns deadline_ns,
              Callback cb);

  /// Synchronous re-verification pricing for recovery/migration: a full
  /// round is mandatory (tickets never cover a migrated or rebooted
  /// subject), but warm collateral skips the network share — and, because
  /// only fetches stall, an attest-outage window delays the round only on
  /// a cache miss. Returns the absolute completion time; mutates cache
  /// contents and counters.
  sim::Ns reverify_done_ns(sim::Ns start_ns, std::uint16_t tcb = 0);

  // Fault hooks (the fault:: integration points).
  void on_reboot(std::uint64_t subject);     ///< crash/reboot: drop ticket
  void on_migration(std::uint64_t subject);  ///< live-migrate: drop ticket
  void on_revocation();  ///< flush cache + invalidate all tickets

  [[nodiscard]] bool outage_at(sim::Ns t) const;
  /// True when any outage window [s, e) overlaps [from, to).
  [[nodiscard]] bool outage_overlaps(sim::Ns from, sim::Ns to) const;

  [[nodiscard]] const CostModel& model() const { return model_; }
  [[nodiscard]] const VerifyConfig& config() const { return cfg_; }
  [[nodiscard]] const CollateralCache& cache() const { return cache_; }
  [[nodiscard]] CollateralCache& cache() { return cache_; }
  [[nodiscard]] const TicketTable& tickets() const { return tickets_; }
  [[nodiscard]] TicketTable& tickets() { return tickets_; }

  [[nodiscard]] std::uint64_t full_verifies() const { return full_; }
  [[nodiscard]] std::uint64_t evtpm_verifies() const { return evtpm_; }
  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t batched_requests() const { return batched_; }
  [[nodiscard]] std::uint64_t collateral_fetches() const { return fetches_; }
  [[nodiscard]] std::uint64_t fetch_failures() const {
    return fetch_failures_;
  }
  [[nodiscard]] std::uint64_t deadline_giveups() const {
    return deadline_giveups_;
  }
  [[nodiscard]] std::uint64_t queue_rejects() const { return queue_rejects_; }
  [[nodiscard]] std::uint64_t revocations() const { return revocations_; }

  /// Publishes every cache/ticket/service counter under
  /// `<prefix>.cache.*`, `<prefix>.ticket.*` and `<prefix>.verify.*`.
  void publish(obs::Registry& reg,
               const std::string& prefix = "attest_svc") const;

 private:
  struct Pending {
    std::uint64_t subject = 0;
    std::uint16_t tcb = 0;
    sim::Ns deadline_ns = 0;
    Callback cb;
  };

  void flush_batch();
  void deliver(sim::Ns at_ns, VerifyStatus status, const Callback& cb);
  /// Applies the request's deadline to a priced success: either mints and
  /// delivers at `t`, or gives up at the deadline.
  void finish_request(const Pending& p, sim::Ns t);

  VerifyConfig cfg_;
  CostModel model_;
  NowFn now_;
  ScheduleAt at_;
  std::vector<std::pair<sim::Ns, sim::Ns>> outages_;
  CollateralCache cache_;
  TicketTable tickets_;
  std::vector<Pending> pending_;
  std::uint64_t batch_epoch_ = 0;  ///< invalidates stale window timers

  std::uint64_t full_ = 0;
  std::uint64_t evtpm_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t fetch_failures_ = 0;
  std::uint64_t deadline_giveups_ = 0;
  std::uint64_t queue_rejects_ = 0;
  std::uint64_t revocations_ = 0;
};

}  // namespace confbench::attest::svc

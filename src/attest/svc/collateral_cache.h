// Verification-collateral cache with TTL and explicit revocation flushes.
//
// TDX verification is PCS-bound: every cold verification pays four WAN
// round trips for TCB info, QE identity and CRLs (~1.24 s of the ~1.46 s
// round). The collateral is the same for every quote from the same
// platform at the same TCB level, so a shared verifier caches it under the
// (platform, tcb) key with a TTL. Three outcomes matter and are counted
// separately:
//
//   hit    a live entry — the verification skips the network entirely;
//   stale  an entry past its TTL — the fetch is re-paid, but the verifier
//          knows the key (distinguishing stale from miss is what lets the
//          operator size the TTL from the counters);
//   miss   the key has never been fetched (or was flushed by revocation).
//
// Revocation is an *event*, not a TTL: when a key is revoked mid-run the
// CRL the cached collateral embeds is wrong, so every entry for the
// platform is flushed immediately — cached-but-revoked collateral must
// never validate a quote. The flush is counted so experiments can see
// revocation storms in the registry snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "sim/time.h"

namespace confbench::obs {
class Registry;
}

namespace confbench::attest::svc {

enum class CacheOutcome : std::uint8_t { kHit, kStale, kMiss };

std::string_view to_string(CacheOutcome o);

/// Cache key: collateral is shared by every quote from one platform at one
/// TCB level (a TCB recovery bumps the level and naturally misses).
struct CollateralKey {
  std::string platform;
  std::uint16_t tcb = 0;
  bool operator<(const CollateralKey& o) const {
    return std::tie(platform, tcb) < std::tie(o.platform, o.tcb);
  }
};

class CollateralCache {
 public:
  /// `ttl_ns` <= 0 disables caching entirely: every lookup is a miss and
  /// inserts are dropped (the cold-cache baseline configuration).
  explicit CollateralCache(sim::Ns ttl_ns) : ttl_ns_(ttl_ns) {}

  /// Classifies a lookup at virtual time `now` and bumps the matching
  /// counter. An entry is live while now < fetched_at + ttl — an entry
  /// whose TTL expires exactly at the lookup instant is already stale.
  CacheOutcome lookup(const CollateralKey& key, sim::Ns now);

  /// Records a completed fetch (overwrites any stale entry). No-op when
  /// the TTL is non-positive.
  void insert(const CollateralKey& key, sim::Ns now);

  /// Non-counting peek: true when a lookup at `now` would hit. Cost-model
  /// callers (migration planning) use this to price a re-attest without
  /// perturbing the hit/miss statistics of the serving path.
  [[nodiscard]] bool warm(const CollateralKey& key, sim::Ns now) const;

  /// Completion time of the entry's fetch (0 when absent). Entries are
  /// inserted when their fetch is *booked*, stamped with its completion
  /// time — a hit against an in-flight fetch must wait for it, not time-
  /// travel past it, so hit consumers pay max(now, fetched_at).
  [[nodiscard]] sim::Ns fetched_at(const CollateralKey& key) const;

  /// Revocation event: flushes every entry of `platform` (all TCB levels)
  /// so subsequent verifications re-fetch a CRL that includes the revoked
  /// key. Returns the number of entries flushed.
  std::size_t revoke(const std::string& platform);

  /// TCB-recovery event: the platform's current TCB level bumps by one, so
  /// warm entries keyed at the old level stop matching and the next
  /// verification re-fetches at the new level. Softer than revoke():
  /// nothing is flushed — old-level collateral stays valid for old-level
  /// quotes, it just stops being looked up. Returns the new level.
  std::uint16_t tcb_recovery();
  /// Current TCB level offset verifiers add to their callers' base level.
  [[nodiscard]] std::uint16_t current_tcb() const { return current_tcb_; }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] sim::Ns ttl_ns() const { return ttl_ns_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t stale() const { return stale_; }
  [[nodiscard]] std::uint64_t revocation_flushes() const {
    return revocation_flushes_;
  }
  [[nodiscard]] std::uint64_t tcb_recoveries() const {
    return tcb_recoveries_;
  }

  /// Publishes the counters as `<prefix>.hit/miss/stale/revoked/
  /// tcb_recovery` into a metrics registry (additive, so shard snapshots
  /// merge exactly).
  void publish(obs::Registry& reg, const std::string& prefix) const;

 private:
  sim::Ns ttl_ns_;
  std::map<CollateralKey, sim::Ns> entries_;  ///< key -> fetched_at
  std::uint16_t current_tcb_ = 0;  ///< level offset (tcb_recovery bumps)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t revocation_flushes_ = 0;  ///< entries flushed by revoke()
  std::uint64_t tcb_recoveries_ = 0;      ///< level bumps applied
};

}  // namespace confbench::attest::svc

// Measurement registers for the three TEE families.
//
// TDX: MRTD (build-time measurement) + 4 run-time-extendable RTMRs.
// SEV-SNP: launch digest + HOST_DATA. CCA: RIM + 4 REMs. Extension follows
// the hardware semantics: new = H(old || event).
#pragma once

#include <array>
#include <string>

#include "attest/sha256.h"

namespace confbench::attest {

/// One extendable measurement register.
class MeasurementRegister {
 public:
  MeasurementRegister() : value_{} {}

  /// Extends the register with an event digest: v = H(v || event).
  void extend(const Digest& event);
  void extend(const std::string& event_data);

  [[nodiscard]] const Digest& value() const { return value_; }

  /// Reconstructs a register from a serialized value (deserialization only;
  /// regular code must go through extend()).
  static MeasurementRegister from_raw(const Digest& d) {
    MeasurementRegister r;
    r.value_ = d;
    return r;
  }

 private:
  Digest value_;
};

/// TDX-style measurement set.
struct TdMeasurements {
  Digest mrtd{};                           ///< static TD measurement
  std::array<MeasurementRegister, 4> rtmr;  ///< run-time registers

  /// Canonical digest over all registers (used as quote body content).
  [[nodiscard]] Digest compose() const;
};

/// SNP-style measurement set.
struct SnpMeasurements {
  Digest launch_digest{};
  Digest host_data{};
  [[nodiscard]] Digest compose() const;
};

/// CCA-style measurement set.
struct RealmMeasurements {
  Digest rim{};                             ///< realm initial measurement
  std::array<MeasurementRegister, 4> rem;   ///< realm extendable registers
  [[nodiscard]] Digest compose() const;
};

/// Deterministically produces the measurements of a "golden" guest image,
/// e.g. the Ubuntu guests of §IV-A. Used both by the attester (to populate
/// evidence) and the verifier (as its reference policy values).
TdMeasurements golden_td_measurements(const std::string& image_tag);
SnpMeasurements golden_snp_measurements(const std::string& image_tag);
RealmMeasurements golden_realm_measurements(const std::string& image_tag);

}  // namespace confbench::attest

// Simulated Intel Provisioning Certification Service (PCS).
//
// The go-tdx-guest verification path fetches TCB info and CRLs from the PCS
// over the network ([20], §IV-C) — this is exactly why TDX's "check" phase
// is slower than SEV-SNP's in Fig. 5. The PCS here serves real collateral
// (trust anchor, revocation list, current TCB level); the *latency* of
// talking to it is charged by the attestation service using the platform's
// AttestationCosts.
#pragma once

#include <cstdint>
#include <vector>

#include "attest/signer.h"

namespace confbench::attest {

struct PcsCollateral {
  PubKey root{};                 ///< Intel root trust anchor
  std::vector<PubKey> crl;       ///< revoked keys
  std::uint16_t current_tcb = 5; ///< latest TCB level for the platform
};

class PcsService {
 public:
  explicit PcsService(PubKey intel_root) : root_(intel_root) {}

  /// Collateral returned to verifiers. The caller charges
  /// `AttestationCosts::collateral_round_trips` network RTTs per fetch.
  [[nodiscard]] PcsCollateral fetch_collateral() const {
    return {root_, crl_, current_tcb_};
  }

  /// Marks a key as revoked (it will appear in subsequent CRLs).
  void revoke(const PubKey& key) { crl_.push_back(key); }

  void set_current_tcb(std::uint16_t tcb) { current_tcb_ = tcb; }

  /// Fault injection: while unavailable, verifiers cannot fetch collateral
  /// and TDX verification fails (SNP is unaffected — its certs are local).
  void set_available(bool available) { available_ = available; }
  [[nodiscard]] bool available() const { return available_; }

  /// go-tdx-guest performs: TCB info, QE identity and two CRL fetches.
  [[nodiscard]] static int round_trips_per_verification() { return 4; }

 private:
  PubKey root_;
  std::vector<PubKey> crl_;
  std::uint16_t current_tcb_ = 5;
  bool available_ = true;
};

}  // namespace confbench::attest

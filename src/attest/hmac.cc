#include "attest/hmac.h"

namespace confbench::attest {

Digest hmac_sha256(const std::vector<std::uint8_t>& key, const void* msg,
                   std::size_t len) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, 64> ipad{}, opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad.data(), ipad.size());
  inner.update(msg, len);
  const Digest inner_d = inner.finalize();
  Sha256 outer;
  outer.update(opad.data(), opad.size());
  outer.update(inner_d.data(), inner_d.size());
  return outer.finalize();
}

bool digest_equal(const Digest& a, const Digest& b) {
  unsigned char diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace confbench::attest

#include "attest/pcs.h"

// Header-only; anchors the translation unit.

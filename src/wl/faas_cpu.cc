// CPU-bound FaaS workloads. Each performs real computation and charges the
// RtContext for the operations actually executed.
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "wl/faas.h"

namespace confbench::wl {

namespace {

// --- cpustress: trigonometric + arithmetic loop (§IV-D) --------------------
std::string cpustress(rt::RtContext& env) {
  double acc = 0.0;
  constexpr int kIters = 120000;
  for (int i = 1; i <= kIters; ++i) {
    const double x = static_cast<double>(i) * 0.001;
    acc += std::sin(x) * std::cos(x / 2.0) + std::sqrt(x);
    acc -= std::fmod(acc, 7.0);
  }
  // ~6 transcendental-equivalent FLOPs + 4 int ops per iteration.
  env.fop(kIters * 22.0);
  env.op(kIters * 4.0, kIters);
  std::ostringstream os;
  os << "cpustress:" << static_cast<long long>(acc);
  return os.str();
}

// --- factors: factorisation of a composite (§IV-D) --------------------------
std::string factors(rt::RtContext& env) {
  // Trial division over numbers with a large prime factor, so the loop
  // really runs to sqrt(n) (8 numbers around 5e9).
  std::uint64_t divisions = 0;
  std::size_t total_factors = 0;
  std::uint64_t last = 0;
  for (std::uint64_t k = 0; k < 8; ++k) {
    std::uint64_t m = 4999999937ULL + k * 2;  // 4999999937 is prime
    std::vector<std::uint64_t> fs;
    for (std::uint64_t d = 2; d * d <= m; ++d) {
      while (m % d == 0) {
        fs.push_back(d);
        m /= d;
        ++divisions;
      }
      ++divisions;
    }
    if (m > 1) fs.push_back(m);
    total_factors += fs.size();
    last = fs.back();
  }
  env.op(static_cast<double>(divisions) * 6.0,
         static_cast<double>(divisions));
  std::ostringstream os;
  os << "factors:" << total_factors << ":" << last;
  return os.str();
}

// --- ack: Ackermann function ('ack' in Fig. 6) ------------------------------
std::uint64_t ack_calls;
std::uint64_t ackermann(std::uint64_t m, std::uint64_t n) {
  ++ack_calls;
  if (m == 0) return n + 1;
  if (n == 0) return ackermann(m - 1, 1);
  return ackermann(m - 1, ackermann(m, n - 1));
}

std::string ack(rt::RtContext& env) {
  ack_calls = 0;
  std::uint64_t r = 0;
  for (int rep = 0; rep < 4; ++rep) r = ackermann(3, 6);  // ~172k calls each
  // Each call: compare+branch+call frame traffic.
  env.op(static_cast<double>(ack_calls) * 8.0,
         static_cast<double>(ack_calls) * 2.0);
  const std::uint64_t stack = env.alloc(1 << 16);
  env.read(stack, static_cast<std::uint64_t>(ack_calls) / 2, 64);
  return "ack:" + std::to_string(r);
}

// --- fib: iterative big-step Fibonacci ---------------------------------------
std::string fib(rt::RtContext& env) {
  constexpr int kN = 90;
  constexpr int kReps = 20000;
  std::uint64_t last = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::uint64_t a = 0, b = 1;
    for (int i = 0; i < kN; ++i) {
      const std::uint64_t t = a + b;
      a = b;
      b = t;
    }
    last = a;
  }
  env.op(static_cast<double>(kReps) * kN * 3.0,
         static_cast<double>(kReps) * kN);
  return "fib:" + std::to_string(last % 1000000007ULL);
}

// --- primes: sieve of Eratosthenes -------------------------------------------
std::string primes(rt::RtContext& env) {
  constexpr std::uint32_t kLimit = 400000;
  std::vector<std::uint8_t> sieve(kLimit + 1, 1);
  sieve[0] = sieve[1] = 0;
  std::uint64_t marks = 0;
  for (std::uint32_t p = 2; p * p <= kLimit; ++p) {
    if (!sieve[p]) continue;
    for (std::uint32_t q = p * p; q <= kLimit; q += p) {
      sieve[q] = 0;
      ++marks;
    }
  }
  const auto count = static_cast<std::uint64_t>(
      std::accumulate(sieve.begin(), sieve.end(), 0u));
  env.op(static_cast<double>(marks) * 2.0 + kLimit,
         static_cast<double>(marks));
  const std::uint64_t buf = env.alloc(kLimit);
  env.write(buf, kLimit, 64);   // sieve array traffic
  env.read(buf, kLimit, 64);    // final count pass
  return "primes:" + std::to_string(count);
}

// --- mandelbrot ---------------------------------------------------------------
std::string mandelbrot(rt::RtContext& env) {
  constexpr int kW = 160, kH = 120, kMaxIter = 60;
  std::uint64_t inside = 0;
  std::uint64_t total_iters = 0;
  for (int py = 0; py < kH; ++py) {
    for (int px = 0; px < kW; ++px) {
      const double cx = -2.0 + 3.0 * px / kW;
      const double cy = -1.2 + 2.4 * py / kH;
      double zx = 0, zy = 0;
      int it = 0;
      while (zx * zx + zy * zy < 4.0 && it < kMaxIter) {
        const double t = zx * zx - zy * zy + cx;
        zy = 2 * zx * zy + cy;
        zx = t;
        ++it;
        ++total_iters;
      }
      if (it == kMaxIter) ++inside;
    }
  }
  env.fop(static_cast<double>(total_iters) * 10.0);
  env.op(static_cast<double>(total_iters) * 2.0,
         static_cast<double>(total_iters));
  const std::uint64_t img = env.alloc(kW * kH);
  env.write(img, kW * kH, 64);
  return "mandelbrot:" + std::to_string(inside);
}

// --- nbody: planetary system energy ------------------------------------------
std::string nbody(rt::RtContext& env) {
  struct Body {
    double x, y, z, vx, vy, vz, m;
  };
  std::array<Body, 5> bodies{{{0, 0, 0, 0, 0, 0, 39.47},
                              {4.84, -1.16, -0.10, 0.60, 2.81, -0.02, 0.037},
                              {8.34, 4.12, -0.40, -1.01, 1.82, 0.008, 0.011},
                              {12.89, -15.11, -0.22, 1.08, 0.86, -0.010, 0.0017},
                              {15.38, -25.92, 0.17, 0.97, 0.59, -0.034, 0.0020}}};
  constexpr int kSteps = 40000;
  constexpr double kDt = 0.01;
  for (int s = 0; s < kSteps; ++s) {
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      for (std::size_t j = i + 1; j < bodies.size(); ++j) {
        const double dx = bodies[i].x - bodies[j].x;
        const double dy = bodies[i].y - bodies[j].y;
        const double dz = bodies[i].z - bodies[j].z;
        const double d2 = dx * dx + dy * dy + dz * dz;
        const double mag = kDt / (d2 * std::sqrt(d2));
        bodies[i].vx -= dx * bodies[j].m * mag;
        bodies[i].vy -= dy * bodies[j].m * mag;
        bodies[i].vz -= dz * bodies[j].m * mag;
        bodies[j].vx += dx * bodies[i].m * mag;
        bodies[j].vy += dy * bodies[i].m * mag;
        bodies[j].vz += dz * bodies[i].m * mag;
      }
      bodies[i].x += kDt * bodies[i].vx;
      bodies[i].y += kDt * bodies[i].vy;
      bodies[i].z += kDt * bodies[i].vz;
    }
  }
  double energy = 0;
  for (const auto& b : bodies)
    energy += 0.5 * b.m * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
  const double pair_flops = 10.0 * bodies.size() * (bodies.size() - 1) / 2;
  env.fop(kSteps * (pair_flops + 6.0 * bodies.size()));
  env.op(kSteps * 30.0, kSteps * 12.0);
  std::ostringstream os;
  os << "nbody:" << static_cast<long long>(energy * 1e6);
  return os.str();
}

// --- spectralnorm -------------------------------------------------------------
std::string spectralnorm(rt::RtContext& env) {
  constexpr int kN = 220;
  auto a = [](int i, int j) {
    return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1);
  };
  std::vector<double> u(kN, 1.0), v(kN, 0.0), tmp(kN, 0.0);
  for (int iter = 0; iter < 10; ++iter) {
    for (int i = 0; i < kN; ++i) {
      double s = 0;
      for (int j = 0; j < kN; ++j) s += a(i, j) * u[j];
      tmp[i] = s;
    }
    for (int i = 0; i < kN; ++i) {
      double s = 0;
      for (int j = 0; j < kN; ++j) s += a(j, i) * tmp[j];
      v[i] = s;
    }
    u = v;
  }
  double vbv = 0, vv = 0;
  for (int i = 0; i < kN; ++i) {
    vbv += u[i] * v[i];
    vv += v[i] * v[i];
  }
  const double flops = 10.0 * 2 * kN * static_cast<double>(kN) * 6;
  env.fop(flops);
  env.op(flops * 0.3, flops * 0.1);
  const std::uint64_t vec = env.alloc(kN * 8 * 3);
  env.read(vec, kN * 8 * 3 * 20, 8);
  std::ostringstream os;
  os << "spectralnorm:" << static_cast<long long>(std::sqrt(vbv / vv) * 1e9);
  return os.str();
}

// --- fannkuch -----------------------------------------------------------------
std::string fannkuch(rt::RtContext& env) {
  constexpr int kN = 8;
  std::array<int, kN> perm, perm1, count;
  for (int i = 0; i < kN; ++i) perm1[i] = i;
  int max_flips = 0, checksum = 0, perm_count = 0;
  std::uint64_t total_flips = 0;
  int r = kN;
  while (true) {
    while (r != 1) {
      count[r - 1] = r;
      --r;
    }
    perm = perm1;
    int flips = 0;
    int k = perm[0];
    while (k != 0) {
      for (int i = 0, j = k; i < j; ++i, --j) std::swap(perm[i], perm[j]);
      ++flips;
      k = perm[0];
    }
    total_flips += flips;
    max_flips = std::max(max_flips, flips);
    checksum += (perm_count % 2 == 0) ? flips : -flips;
    ++perm_count;
    while (true) {
      if (r == kN) {
        env.op(static_cast<double>(total_flips) * kN * 2.0,
               static_cast<double>(total_flips) * 2.0);
        return "fannkuch:" + std::to_string(max_flips) + ":" +
               std::to_string(checksum);
      }
      const int p0 = perm1[0];
      for (int i = 0; i < r; ++i) perm1[i] = perm1[i + 1];
      perm1[r] = p0;
      if (--count[r] > 0) break;
      ++r;
    }
  }
}

// --- matrix: dense matmul ------------------------------------------------------
std::string matrix(rt::RtContext& env) {
  constexpr int kN = 120;
  std::vector<double> a(kN * kN), b(kN * kN), c(kN * kN, 0.0);
  for (int i = 0; i < kN * kN; ++i) {
    a[i] = (i % 17) * 0.25;
    b[i] = (i % 13) * 0.5;
  }
  for (int i = 0; i < kN; ++i) {
    for (int k = 0; k < kN; ++k) {
      const double aik = a[i * kN + k];
      for (int j = 0; j < kN; ++j) c[i * kN + j] += aik * b[k * kN + j];
    }
  }
  double trace = 0;
  for (int i = 0; i < kN; ++i) trace += c[i * kN + i];
  const double n3 = static_cast<double>(kN) * kN * kN;
  env.fop(2.0 * n3);
  env.op(n3 * 0.5, n3 / kN);
  const std::uint64_t ma = env.alloc(kN * kN * 8);
  const std::uint64_t mb = env.alloc(kN * kN * 8);
  const std::uint64_t mc = env.alloc(kN * kN * 8);
  // Row-major A and C streams, column-ish B reuse.
  for (int pass = 0; pass < 8; ++pass) {
    env.read(ma, kN * kN * 8, 8);
    env.read(mb, kN * kN * 8, 64);
    env.write(mc, kN * kN * 8, 8);
  }
  std::ostringstream os;
  os << "matrix:" << static_cast<long long>(trace);
  return os.str();
}

// --- crc32 ----------------------------------------------------------------------
std::string crc32ws(rt::RtContext& env) {
  constexpr std::size_t kBytes = 2 << 20;
  std::uint32_t table[256];
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  std::uint32_t crc = 0xFFFFFFFFu;
  std::uint8_t byte = 0x5A;
  for (std::size_t i = 0; i < kBytes; ++i) {
    byte = static_cast<std::uint8_t>(byte * 31 + i);
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  crc ^= 0xFFFFFFFFu;
  env.op(static_cast<double>(kBytes) * 6.0, static_cast<double>(kBytes));
  const std::uint64_t buf = env.alloc(kBytes);
  env.read(buf, kBytes, 64);
  return "crc32:" + std::to_string(crc);
}

}  // namespace

void register_cpu_workloads(std::vector<FaasWorkload>& out) {
  out.push_back({"cpustress", Category::kCpu, cpustress});
  out.push_back({"factors", Category::kCpu, factors});
  out.push_back({"ack", Category::kCpu, ack});
  out.push_back({"fib", Category::kCpu, fib});
  out.push_back({"primes", Category::kCpu, primes});
  out.push_back({"mandelbrot", Category::kCpu, mandelbrot});
  out.push_back({"nbody", Category::kCpu, nbody});
  out.push_back({"spectralnorm", Category::kCpu, spectralnorm});
  out.push_back({"fannkuch", Category::kCpu, fannkuch});
  out.push_back({"matrix", Category::kCpu, matrix});
  out.push_back({"crc32", Category::kCpu, crc32ws});
}

}  // namespace confbench::wl

// Memory-bound FaaS workloads.
#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "attest/sha256.h"
#include "wl/faas.h"

namespace confbench::wl {

namespace {

// --- memstress: repeated 1-MB allocations (§IV-D) ----------------------------
std::string memstress(rt::RtContext& env) {
  constexpr std::uint64_t kBuf = 1 << 20;
  constexpr int kRounds = 256;  // covers "half of available memory" at scale
  std::uint64_t checksum = 0;
  std::vector<std::uint8_t> touch(4096);
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t buf = env.alloc(kBuf);
    env.write(buf, kBuf, 64);  // memset-style fill
    for (auto& b : touch) b = static_cast<std::uint8_t>(b + r);
    checksum += touch[r % touch.size()];
    env.raw().page_fault(static_cast<double>(kBuf) / 4096.0 * 0.5);
    env.release(kBuf);  // dropped each round; GC pressure builds
  }
  env.op(kRounds * 600.0, kRounds * 40.0);
  return "memstress:" + std::to_string(checksum);
}

// --- binarytrees (benchmarksgame-style) ---------------------------------------
int build_check(int item, int depth) {
  if (depth == 0) return item;
  return item + build_check(2 * item - 1, depth - 1) -
         build_check(2 * item, depth - 1);
}

std::string binarytrees(rt::RtContext& env) {
  constexpr int kDepth = 14;
  long check = 0;
  const std::uint64_t nodes = (2ULL << kDepth) - 1;
  for (int rep = 0; rep < 6; ++rep) check += build_check(1, kDepth);
  const double total_nodes = static_cast<double>(nodes) * 6;
  env.op(total_nodes * 6.0, total_nodes * 2.0);
  // Node allocations dominate: ~32 bytes each, pointer-chased on traversal.
  const std::uint64_t heap = env.alloc(nodes * 32);
  for (int rep = 0; rep < 6; ++rep) env.read(heap, nodes * 32, 96);
  return "binarytrees:" + std::to_string(check);
}

// --- quicksort ------------------------------------------------------------------
std::string quicksort(rt::RtContext& env) {
  constexpr std::size_t kN = 300000;
  std::vector<std::uint32_t> xs(kN);
  std::uint32_t v = 12345;
  for (auto& x : xs) {
    v = v * 1664525u + 1013904223u;
    x = v;
  }
  std::sort(xs.begin(), xs.end());
  const double nlogn = static_cast<double>(kN) * 18.0;  // log2(300k) ~ 18.2
  env.op(nlogn * 4.0, nlogn);
  const std::uint64_t arr = env.alloc(kN * 4);
  for (int pass = 0; pass < 18; ++pass) env.read(arr, kN * 4, 64);
  env.write(arr, kN * 4, 64);
  const bool sorted = std::is_sorted(xs.begin(), xs.end());
  return std::string("quicksort:") + (sorted ? "ok" : "fail") + ":" +
         std::to_string(xs[kN / 2]);
}

// --- mergesort (stable, extra buffer => more memory traffic) --------------------
std::string mergesort(rt::RtContext& env) {
  constexpr std::size_t kN = 250000;
  std::vector<std::uint32_t> xs(kN);
  std::uint32_t v = 99991;
  for (auto& x : xs) {
    v ^= v << 13;
    v ^= v >> 17;
    v ^= v << 5;
    x = v;
  }
  std::stable_sort(xs.begin(), xs.end());
  const double nlogn = static_cast<double>(kN) * 18.0;
  env.op(nlogn * 3.5, nlogn);
  const std::uint64_t arr = env.alloc(kN * 4);
  const std::uint64_t tmp = env.alloc(kN * 4);
  for (int pass = 0; pass < 9; ++pass) {
    env.read(arr, kN * 4, 64);
    env.write(tmp, kN * 4, 64);
    env.read(tmp, kN * 4, 64);
    env.write(arr, kN * 4, 64);
  }
  return "mergesort:" + std::to_string(xs[0]) + ":" +
         std::to_string(xs[kN - 1]);
}

// --- hashtable: build + probe --------------------------------------------------
std::string hashtable(rt::RtContext& env) {
  constexpr std::size_t kN = 120000;
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  map.reserve(kN);
  std::uint64_t v = 7;
  for (std::size_t i = 0; i < kN; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    map[v >> 16] = i;
  }
  std::uint64_t hits = 0;
  v = 7;
  for (std::size_t i = 0; i < kN; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    hits += map.count(v >> 16);
  }
  env.op(static_cast<double>(kN) * 2 * 12.0, static_cast<double>(kN) * 4);
  // Random-access probes: stride larger than a line, poor locality.
  const std::uint64_t tbl = env.alloc(kN * 48);
  env.read(tbl, kN * 48, 192);
  env.write(tbl, kN * 24, 192);
  return "hashtable:" + std::to_string(hits);
}

// --- strmatch: naive substring search over generated text -----------------------
std::string strmatch(rt::RtContext& env) {
  std::string text;
  text.reserve(1 << 20);
  std::uint32_t v = 31337;
  for (std::size_t i = 0; i < (1 << 20); ++i) {
    v = v * 1103515245u + 12345u;
    text += static_cast<char>('a' + (v >> 16) % 6);
  }
  const std::string pattern = "abcabd";
  std::size_t found = 0, pos = 0;
  while ((pos = text.find(pattern, pos)) != std::string::npos) {
    ++found;
    ++pos;
  }
  env.op(static_cast<double>(text.size()) * 3.0,
         static_cast<double>(text.size()));
  const std::uint64_t buf = env.alloc(text.size());
  env.read(buf, text.size(), 64);
  return "strmatch:" + std::to_string(found);
}

// --- base64 -----------------------------------------------------------------------
std::string base64(rt::RtContext& env) {
  static const char* kTab =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  constexpr std::size_t kBytes = 3 << 19;  // 1.5 MB payload
  std::string out;
  out.reserve(kBytes * 4 / 3 + 4);
  std::uint32_t v = 555;
  std::uint8_t trio[3];
  for (std::size_t i = 0; i < kBytes; i += 3) {
    for (int k = 0; k < 3; ++k) {
      v = v * 22695477u + 1u;
      trio[k] = static_cast<std::uint8_t>(v >> 23);
    }
    const std::uint32_t n = (trio[0] << 16) | (trio[1] << 8) | trio[2];
    out += kTab[(n >> 18) & 63];
    out += kTab[(n >> 12) & 63];
    out += kTab[(n >> 6) & 63];
    out += kTab[n & 63];
  }
  env.op(static_cast<double>(kBytes) * 5.0, static_cast<double>(kBytes) / 3);
  const std::uint64_t src = env.alloc(kBytes);
  const std::uint64_t dst = env.alloc(out.size());
  env.read(src, kBytes, 64);
  env.write(dst, out.size(), 64);
  return "base64:" + std::to_string(out.size()) + ":" + out.substr(0, 8);
}

// --- json: tokenize + parse a synthetic document ---------------------------------
std::string json_parse(rt::RtContext& env) {
  // Build a realistic document, then parse it with a real recursive-descent
  // pass counting structure.
  std::string doc = "{\"records\":[";
  for (int i = 0; i < 4000; ++i) {
    doc += "{\"id\":" + std::to_string(i) +
           ",\"name\":\"user" + std::to_string(i * 7 % 997) +
           "\",\"score\":" + std::to_string((i * 31) % 100) + "." +
           std::to_string(i % 10) + ",\"active\":" +
           ((i % 3) ? "true" : "false") + "}";
    if (i != 3999) doc += ",";
  }
  doc += "]}";

  std::size_t objects = 0, numbers = 0, strings = 0, depth = 0, max_depth = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '{') {
      ++objects;
      ++depth;
      max_depth = std::max(max_depth, depth);
    } else if (c == '}') {
      --depth;
    } else if (c == '"') {
      ++strings;
      while (++i < doc.size() && doc[i] != '"') {
      }
    } else if ((c >= '0' && c <= '9') || c == '-') {
      ++numbers;
      while (i + 1 < doc.size() &&
             ((doc[i + 1] >= '0' && doc[i + 1] <= '9') || doc[i + 1] == '.'))
        ++i;
    }
  }
  env.op(static_cast<double>(doc.size()) * 4.0,
         static_cast<double>(doc.size()) * 1.5);
  // Parsed trees allocate per node — heavy boxing in managed runtimes.
  const double nodes = static_cast<double>(objects + numbers + strings);
  for (int chunk = 0; chunk < 16; ++chunk)
    env.alloc(static_cast<std::uint64_t>(nodes * 40 / 16));
  const std::uint64_t buf = env.alloc(doc.size());
  env.read(buf, doc.size(), 64);
  std::ostringstream os;
  os << "json:" << objects << ":" << strings / 2 << ":" << max_depth;
  return os.str();
}

// --- sha256 over a generated payload ----------------------------------------------
std::string sha256ws(rt::RtContext& env) {
  constexpr std::size_t kBytes = 1 << 20;
  std::vector<std::uint8_t> payload(kBytes);
  std::uint32_t v = 42;
  for (auto& b : payload) {
    v = v * 747796405u + 2891336453u;
    b = static_cast<std::uint8_t>(v >> 24);
  }
  const attest::Digest d = attest::Sha256::hash(payload);
  // ~14 ops per byte for a portable SHA-256.
  env.op(static_cast<double>(kBytes) * 14.0,
         static_cast<double>(kBytes) / 8.0);
  const std::uint64_t buf = env.alloc(kBytes);
  env.read(buf, kBytes, 64);
  return "sha256:" + attest::to_hex(d).substr(0, 16);
}

// --- huffman: frequency analysis + encoding ----------------------------------------
std::string huffman(rt::RtContext& env) {
  constexpr std::size_t kBytes = 1 << 20;
  std::vector<std::uint8_t> data(kBytes);
  std::uint32_t v = 2024;
  for (auto& b : data) {
    v = v * 134775813u + 1u;
    b = static_cast<std::uint8_t>((v >> 24) & 0x3F);  // skewed alphabet
  }
  std::array<std::uint64_t, 256> freq{};
  for (std::uint8_t b : data) ++freq[b];
  // Build code lengths with a simple two-queue method over sorted leaves.
  std::vector<std::pair<std::uint64_t, int>> nodes;  // (weight, depth proxy)
  for (int i = 0; i < 256; ++i)
    if (freq[i]) nodes.push_back({freq[i], 0});
  std::sort(nodes.begin(), nodes.end());
  double merge_ops = 0;
  while (nodes.size() > 1) {
    auto a = nodes[0], b = nodes[1];
    nodes.erase(nodes.begin(), nodes.begin() + 2);
    std::pair<std::uint64_t, int> m{a.first + b.first,
                                    std::max(a.second, b.second) + 1};
    nodes.insert(std::lower_bound(nodes.begin(), nodes.end(), m), m);
    merge_ops += 40;
  }
  const int tree_depth = nodes.empty() ? 0 : nodes[0].second;
  // Encoding pass: table lookup per byte.
  env.op(static_cast<double>(kBytes) * 8.0 + merge_ops,
         static_cast<double>(kBytes));
  const std::uint64_t in = env.alloc(kBytes);
  const std::uint64_t out = env.alloc(kBytes);
  env.read(in, kBytes, 64);
  env.read(in, kBytes, 64);  // freq pass + encode pass
  env.write(out, kBytes * 3 / 4, 64);
  return "huffman:" + std::to_string(tree_depth);
}

}  // namespace

void register_mem_workloads(std::vector<FaasWorkload>& out) {
  out.push_back({"memstress", Category::kMemory, memstress});
  out.push_back({"binarytrees", Category::kMemory, binarytrees});
  out.push_back({"quicksort", Category::kMemory, quicksort});
  out.push_back({"mergesort", Category::kMemory, mergesort});
  out.push_back({"hashtable", Category::kMemory, hashtable});
  out.push_back({"strmatch", Category::kMemory, strmatch});
  out.push_back({"base64", Category::kMemory, base64});
  out.push_back({"json", Category::kMemory, json_parse});
  out.push_back({"sha256", Category::kMemory, sha256ws});
  out.push_back({"huffman", Category::kMemory, huffman});
}

}  // namespace confbench::wl

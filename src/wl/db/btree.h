// A real in-memory B+-tree: MiniDB's storage engine.
//
// Keys are 64-bit integers, values are opaque 64-bit row references. Leaf
// nodes are chained for range scans. Every node carries a simulated address
// so the database layer can charge node-touch traffic through the cache
// model; the tree itself is a plain data structure with invariants that the
// test suite checks (ordering, fill factors, leaf chaining, depth balance).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace confbench::wl::db {

class BPlusTree {
 public:
  static constexpr int kOrder = 32;  ///< max children per inner node

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts or overwrites. Returns true if the key was new. `touched`
  /// (optional) receives the simulated address of every node visited.
  bool insert(std::uint64_t key, std::uint64_t value);

  [[nodiscard]] std::optional<std::uint64_t> find(std::uint64_t key) const;

  /// Removes a key; returns true if it existed. (Simple deletion: leaves
  /// may underflow, which mirrors SQLite's lazy vacuuming.)
  bool erase(std::uint64_t key);

  /// Visits [lo, hi] in ascending key order.
  void scan(std::uint64_t lo, std::uint64_t hi,
            const std::function<void(std::uint64_t, std::uint64_t)>& fn) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] int height() const;

  /// Structural invariants (for tests): sorted keys, children counts,
  /// uniform leaf depth, correct leaf chain. Returns false on violation.
  [[nodiscard]] bool validate() const;

  /// Node-touch accounting: addresses of nodes visited since the last
  /// drain. The DB layer converts these into cache-model charges.
  std::vector<std::uint64_t> drain_touched() const {
    auto out = std::move(touched_);
    touched_.clear();
    return out;
  }

  /// Total node count (inner + leaf).
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;
  struct Node {
    bool leaf = true;
    std::uint64_t sim_addr = 0;
    std::vector<std::uint64_t> keys;
    std::vector<std::uint64_t> values;  // leaf payload
    std::vector<NodePtr> children;      // inner fan-out
    Node* next = nullptr;               // leaf chain
  };

  Node* new_node(bool leaf);
  void touch(const Node* n) const { touched_.push_back(n->sim_addr); }
  // Returns the separator key + new right sibling if the child split.
  struct SplitResult {
    std::uint64_t sep_key;
    NodePtr right;
  };
  std::optional<SplitResult> insert_rec(Node* n, std::uint64_t key,
                                        std::uint64_t value, bool* was_new);
  bool validate_rec(const Node* n, int depth, int leaf_depth,
                    std::uint64_t lo, std::uint64_t hi) const;
  int leaf_depth() const;

  NodePtr root_;
  std::size_t size_ = 0;
  std::size_t node_count_ = 0;
  std::uint64_t next_sim_addr_ = 0x4000000000ULL;
  mutable std::vector<std::uint64_t> touched_;
};

}  // namespace confbench::wl::db

#include "wl/db/db.h"

#include <stdexcept>

namespace confbench::wl::db {

namespace {
constexpr std::uint64_t kNodeBytes = 4096;    // one simulated page per node
constexpr double kRowEncodeOpsPerByte = 1.6;  // record (de)serialisation
// SQL front-end + VDBE interpretation per statement (parse, plan lookup,
// opcode dispatch) — the bulk of SQLite's per-statement CPU cost.
constexpr double kStatementOps = 5200;
constexpr double kStatementBranches = 700;
}  // namespace

Table::Table(std::string name, vm::ExecutionContext& ctx)
    : name_(std::move(name)),
      ctx_(ctx),
      row_region_(ctx.alloc_region(64ULL << 20, 4096)) {}

void Table::charge_touches() const {
  // Convert B+-tree node visits into page-sized cache traffic.
  for (std::uint64_t addr : index_.drain_touched())
    ctx_.mem_read(addr, kNodeBytes / 8, 64);  // binary search touches ~1/8
}

void Table::insert(const Row& row) {
  ctx_.compute(kStatementOps, kStatementBranches);
  Row stored = row;
  stored.checksum = row.key * 0x9E3779B97F4A7C15ULL + row.payload_bytes;
  const std::uint64_t rowid = next_rowid_++;
  heap_[rowid] = stored;
  index_.insert(row.key, rowid);
  charge_touches();
  // Row encode + copy into the row store.
  ctx_.compute(row.payload_bytes * kRowEncodeOpsPerByte,
               row.payload_bytes * 0.1);
  ctx_.mem_write(row_region_ + (rowid * 128) % (64ULL << 20),
                 row.payload_bytes, 64);
  if (db_ != nullptr)
    db_->log_mutation(row.payload_bytes + 24);
}

std::optional<Row> Table::lookup(std::uint64_t key) const {
  ctx_.compute(kStatementOps * 0.6, kStatementBranches * 0.6);
  const auto rowid = index_.find(key);
  charge_touches();
  if (!rowid) return std::nullopt;
  const auto it = heap_.find(*rowid);
  if (it == heap_.end()) return std::nullopt;
  ctx_.mem_read(row_region_ + (*rowid * 128) % (64ULL << 20),
                it->second.payload_bytes, 64);
  ctx_.compute(it->second.payload_bytes * kRowEncodeOpsPerByte * 0.6,
               it->second.payload_bytes * 0.05);
  return it->second;
}

bool Table::erase(std::uint64_t key) {
  ctx_.compute(kStatementOps, kStatementBranches);
  const auto rowid = index_.find(key);
  const bool existed = index_.erase(key);
  charge_touches();
  if (existed && rowid) heap_.erase(*rowid);
  ctx_.compute(200, 20);
  if (existed && db_ != nullptr)
    db_->log_mutation(32);
  return existed;
}

std::pair<std::size_t, std::uint64_t> Table::scan(std::uint64_t lo,
                                                  std::uint64_t hi) const {
  ctx_.compute(kStatementOps * 0.8, kStatementBranches * 0.8);
  std::size_t count = 0;
  std::uint64_t checksum = 0;
  index_.scan(lo, hi, [&](std::uint64_t /*key*/, std::uint64_t rowid) {
    const auto it = heap_.find(rowid);
    if (it == heap_.end()) return;
    checksum ^= it->second.checksum;
    ++count;
    ctx_.mem_read(row_region_ + (rowid * 128) % (64ULL << 20),
                  it->second.payload_bytes, 64);
  });
  charge_touches();
  ctx_.compute(static_cast<double>(count) * 40.0,
               static_cast<double>(count) * 6.0);
  return {count, checksum};
}

std::size_t Table::update_range(std::uint64_t lo, std::uint64_t hi,
                                std::uint32_t new_payload) {
  ctx_.compute(kStatementOps, kStatementBranches);
  std::size_t count = 0;
  std::vector<std::uint64_t> rowids;
  index_.scan(lo, hi, [&](std::uint64_t, std::uint64_t rowid) {
    rowids.push_back(rowid);
  });
  charge_touches();
  for (std::uint64_t rowid : rowids) {
    auto it = heap_.find(rowid);
    if (it == heap_.end()) continue;
    it->second.payload_bytes = new_payload;
    it->second.checksum ^= new_payload;
    ++count;
    ctx_.compute(kStatementOps * 0.4, kStatementBranches * 0.4);  // per-row VDBE
    ctx_.mem_write(row_region_ + (rowid * 128) % (64ULL << 20), new_payload,
                   64);
    ctx_.compute(new_payload * kRowEncodeOpsPerByte, new_payload * 0.1);
    if (db_ != nullptr)
      db_->log_mutation(new_payload + 24);
  }
  return count;
}

Database::Database(vm::ExecutionContext& ctx, vm::Vfs& fs,
                   std::string wal_path)
    : ctx_(ctx), fs_(fs), wal_path_(std::move(wal_path)) {
  fs_.mkdir("/db");
  fs_.create(wal_path_);
}

Table& Database::create_table(const std::string& name) {
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(name, ctx_));
  if (!inserted) throw std::invalid_argument("table exists: " + name);
  it->second->db_ = this;
  // Schema bookkeeping + root page allocation.
  ctx_.compute(4000, 300);
  log_mutation(512);
  return *it->second;
}

void Database::drop_table(const std::string& name) {
  if (tables_.erase(name) == 0)
    throw std::invalid_argument("no such table: " + name);
  ctx_.compute(3000, 200);
  log_mutation(256);
}

Table* Database::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Database::begin() { in_txn_ = true; }

void Database::commit() {
  // Flush accumulated WAL records and fsync — the durable point.
  if (pending_wal_bytes_ > 0) {
    fs_.write(wal_path_, pending_wal_bytes_);
    pending_wal_bytes_ = 0;
  }
  fs_.fsync(wal_path_);
  in_txn_ = false;
  maybe_checkpoint();
}

void Database::maybe_checkpoint() {
  // WAL checkpoint: once the log outgrows the threshold, pages migrate to
  // the main database file and the log restarts (SQLite's behaviour).
  if (fs_.file_size(wal_path_) < kCheckpointBytes) return;
  fs_.truncate(wal_path_);
  ctx_.compute(20000, 1500);
}

void Database::log_mutation(std::uint64_t bytes) {
  if (in_txn_) {
    pending_wal_bytes_ += bytes;
    return;
  }
  // Autocommit: every statement is its own durable transaction, like the
  // non-batched speedtest1 phases.
  fs_.write(wal_path_, bytes);
  fs_.fsync(wal_path_);
  maybe_checkpoint();
}

}  // namespace confbench::wl::db

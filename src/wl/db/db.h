// MiniDB: a small embedded relational-ish database over BPlusTree + VFS.
//
// Plays the role of SQLite in the paper's DBMS stress test (§IV-C). Tables
// store fixed-schema rows keyed by an integer primary key, with optional
// secondary indexes. Mutations go through a write-ahead log in the guest
// VFS; COMMIT fsyncs it (this is where the TDX bounce-buffer path bites).
// All node and row traffic is charged through the cache model.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include "vm/exec_context.h"
#include "vm/vfs.h"
#include "wl/db/btree.h"

namespace confbench::wl::db {

/// A row: key + a packed payload (we model, not store, column data; the
/// payload size drives memory traffic like SQLite record encoding does).
struct Row {
  std::uint64_t key = 0;
  std::uint32_t payload_bytes = 64;
  std::uint64_t checksum = 0;  ///< real content proxy, verified by tests
};

class Table {
 public:
  Table(std::string name, vm::ExecutionContext& ctx);

  /// Inserts (or replaces) a row; charges index traversal + row encoding.
  void insert(const Row& row);
  [[nodiscard]] std::optional<Row> lookup(std::uint64_t key) const;
  bool erase(std::uint64_t key);
  /// Inclusive range scan; returns matching row count and accumulates
  /// checksum (so the work cannot be optimised away).
  std::pair<std::size_t, std::uint64_t> scan(std::uint64_t lo,
                                             std::uint64_t hi) const;
  /// In-place payload update for all keys in [lo, hi]; returns count.
  std::size_t update_range(std::uint64_t lo, std::uint64_t hi,
                           std::uint32_t new_payload);

  [[nodiscard]] std::size_t rows() const { return index_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BPlusTree& index() const { return index_; }

 private:
  friend class Database;
  void charge_touches() const;

  class Database* db_ = nullptr;  ///< owning DB, for WAL logging

  std::string name_;
  vm::ExecutionContext& ctx_;
  BPlusTree index_;
  std::map<std::uint64_t, Row> heap_;  ///< row store (by rowid)
  std::uint64_t next_rowid_ = 1;
  std::uint64_t row_region_;
};

class Database {
 public:
  Database(vm::ExecutionContext& ctx, vm::Vfs& fs,
           std::string wal_path = "/db/wal.log");

  Table& create_table(const std::string& name);
  void drop_table(const std::string& name);
  [[nodiscard]] Table* table(const std::string& name);

  /// Transactions batch WAL traffic; COMMIT appends + fsyncs the log.
  void begin();
  void commit();

  /// Appends `bytes` of WAL records for a mutation (called by tests and by
  /// Table mutators through the active database).
  void log_mutation(std::uint64_t bytes);

  /// WAL size that triggers a checkpoint (log truncation).
  static constexpr std::uint64_t kCheckpointBytes = 4 << 20;

  [[nodiscard]] bool in_transaction() const { return in_txn_; }
  [[nodiscard]] vm::ExecutionContext& ctx() { return ctx_; }

 private:
  vm::ExecutionContext& ctx_;
  vm::Vfs& fs_;
  std::string wal_path_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  void maybe_checkpoint();

  bool in_txn_ = false;
  std::uint64_t pending_wal_bytes_ = 0;
};

}  // namespace confbench::wl::db

#include "wl/db/speedtest.h"

#include "sim/rng.h"
#include "wl/db/db.h"

namespace confbench::wl::db {

namespace {

struct Bench {
  vm::ExecutionContext& ctx;
  std::vector<SpeedtestResult>& out;

  /// Runs one named test, timing it on the virtual clock.
  template <typename Fn>
  void run(const std::string& id, const std::string& name, Fn&& fn) {
    const sim::Ns start = ctx.now();
    const std::uint64_t checksum = fn();
    out.push_back({id, name, ctx.now() - start, checksum});
  }
};

}  // namespace

std::vector<std::string> speedtest_test_names() {
  std::vector<std::string> names;
  // Keep in sync with run_speedtest below (checked by a unit test).
  names = {"100 INSERTs into table with no index",
           "110 ordered INSERTs with one index/PK",
           "120 unordered INSERTs with one index/PK",
           "130 SELECTs, numeric BETWEEN, unindexed",
           "142 random SELECTs by rowid",
           "160 SELECTs, numeric BETWEEN, indexed",
           "230 UPDATEs, numeric BETWEEN, indexed",
           "240 UPDATEs of individual rows",
           "250 one big UPDATE of the whole table",
           "270 DELETEs, numeric BETWEEN, indexed",
           "280 DELETEs of individual rows",
           "290 refill table after bulk DELETE",
           "300 full-table ORDER BY scan",
           "310 DROP TABLE and recreate"};
  return names;
}

std::vector<SpeedtestResult> run_speedtest(vm::ExecutionContext& ctx,
                                           vm::Vfs& fs, int size) {
  std::vector<SpeedtestResult> results;
  Bench bench{ctx, results};
  Database database(ctx, fs);
  sim::Rng rng(sim::stable_hash("speedtest1"));

  const auto n = static_cast<std::uint64_t>(size) * 30;   // bulk row count
  const auto q = static_cast<std::uint64_t>(size) * 6;    // query count

  // 100: autocommit inserts, no explicit transaction (fsync per statement).
  bench.run("100", "INSERTs into table with no index", [&] {
    Table& t = database.create_table("t100");
    for (std::uint64_t i = 0; i < n / 6; ++i)
      t.insert({i, static_cast<std::uint32_t>(40 + i % 80), 0});
    return static_cast<std::uint64_t>(t.rows());
  });

  // 110: ordered inserts inside one transaction.
  bench.run("110", "ordered INSERTs with one index/PK", [&] {
    Table& t = database.create_table("t110");
    database.begin();
    for (std::uint64_t i = 0; i < n; ++i)
      t.insert({i, static_cast<std::uint32_t>(40 + i % 80), 0});
    database.commit();
    return static_cast<std::uint64_t>(t.rows());
  });

  // 120: random-key inserts inside one transaction (worse tree locality).
  bench.run("120", "unordered INSERTs with one index/PK", [&] {
    Table& t = database.create_table("t120");
    database.begin();
    for (std::uint64_t i = 0; i < n; ++i)
      t.insert({rng.next_u64() % (n * 8),
                static_cast<std::uint32_t>(40 + i % 80), 0});
    database.commit();
    return static_cast<std::uint64_t>(t.rows());
  });

  Table& main_table = *database.table("t110");

  // 130: range scans standing in for unindexed BETWEEN (full scans).
  bench.run("130", "SELECTs, numeric BETWEEN, unindexed", [&] {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < q / 8; ++i) {
      auto [count, sum] = main_table.scan(0, n);  // full scan
      acc ^= sum + count;
    }
    return acc;
  });

  // 142: random point lookups by PK.
  bench.run("142", "random SELECTs by rowid", [&] {
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < q * 4; ++i) {
      const auto row = main_table.lookup(rng.next_u64() % n);
      hits += row.has_value();
    }
    return hits;
  });

  // 160: narrow indexed range queries.
  bench.run("160", "SELECTs, numeric BETWEEN, indexed", [&] {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < q * 2; ++i) {
      const std::uint64_t lo = rng.next_u64() % n;
      auto [count, sum] = main_table.scan(lo, lo + 50);
      acc ^= sum + count;
    }
    return acc;
  });

  // 230: range updates inside a transaction.
  bench.run("230", "UPDATEs, numeric BETWEEN, indexed", [&] {
    database.begin();
    std::uint64_t updated = 0;
    for (std::uint64_t i = 0; i < q / 2; ++i) {
      const std::uint64_t lo = rng.next_u64() % n;
      updated += main_table.update_range(lo, lo + 40, 72);
    }
    database.commit();
    return updated;
  });

  // 240: individual-row updates (autocommit — durable each time).
  bench.run("240", "UPDATEs of individual rows", [&] {
    std::uint64_t updated = 0;
    for (std::uint64_t i = 0; i < q; ++i) {
      const std::uint64_t k = rng.next_u64() % n;
      updated += main_table.update_range(k, k, 80);
    }
    return updated;
  });

  // 250: one whole-table update.
  bench.run("250", "one big UPDATE of the whole table", [&] {
    database.begin();
    const std::size_t updated = main_table.update_range(0, n, 96);
    database.commit();
    return static_cast<std::uint64_t>(updated);
  });

  // 270: indexed range deletes.
  bench.run("270", "DELETEs, numeric BETWEEN, indexed", [&] {
    database.begin();
    std::uint64_t deleted = 0;
    for (std::uint64_t base = 0; base < n / 4; base += 16) {
      for (std::uint64_t k = base; k < base + 8; ++k)
        deleted += main_table.erase(k);
    }
    database.commit();
    return deleted;
  });

  // 280: individual deletes (autocommit).
  bench.run("280", "DELETEs of individual rows", [&] {
    std::uint64_t deleted = 0;
    for (std::uint64_t i = 0; i < q; ++i)
      deleted += main_table.erase(n / 4 + i * 3);
    return deleted;
  });

  // 290: refill after bulk deletion.
  bench.run("290", "refill table after bulk DELETE", [&] {
    database.begin();
    for (std::uint64_t i = 0; i < n / 2; ++i)
      main_table.insert({i, 64, 0});
    database.commit();
    return static_cast<std::uint64_t>(main_table.rows());
  });

  // 300: full ordered scan (ORDER BY via the index).
  bench.run("300", "full-table ORDER BY scan", [&] {
    auto [count, sum] = main_table.scan(0, ~0ULL);
    return sum + count;
  });

  // 310: drop + recreate.
  bench.run("310", "DROP TABLE and recreate", [&] {
    database.drop_table("t120");
    Table& t = database.create_table("t120");
    database.begin();
    for (std::uint64_t i = 0; i < n / 4; ++i) t.insert({i, 48, 0});
    database.commit();
    return static_cast<std::uint64_t>(t.rows());
  });

  return results;
}

}  // namespace confbench::wl::db

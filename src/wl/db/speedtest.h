// MiniDB speedtest: a suite mirroring SQLite's speedtest1 test mix (§IV-C).
//
// Test ids and names follow speedtest1.c's numbering; row counts are scaled
// from the --size 100 defaults so the simulation stays fast while keeping
// each test's character (autocommit vs transactional inserts, indexed vs
// unindexed lookups, ordered vs random key patterns, bulk updates/deletes).
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"
#include "vm/exec_context.h"
#include "vm/vfs.h"

namespace confbench::wl::db {

struct SpeedtestResult {
  std::string id;      ///< speedtest1-style test number, e.g. "110"
  std::string name;
  sim::Ns elapsed = 0;
  std::uint64_t checksum = 0;  ///< result digest; must match across VMs
};

/// Runs the full suite in the given context. `size` follows speedtest1's
/// relative test-size convention (the paper keeps the default, 100).
std::vector<SpeedtestResult> run_speedtest(vm::ExecutionContext& ctx,
                                           vm::Vfs& fs, int size = 100);

/// Names of all tests in suite order (for table headers).
std::vector<std::string> speedtest_test_names();

}  // namespace confbench::wl::db

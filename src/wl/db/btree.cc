#include "wl/db/btree.h"

#include <algorithm>

namespace confbench::wl::db {

BPlusTree::BPlusTree() { root_.reset(new_node(/*leaf=*/true)); }
BPlusTree::~BPlusTree() = default;

BPlusTree::Node* BPlusTree::new_node(bool leaf) {
  auto* n = new Node;
  n->leaf = leaf;
  n->sim_addr = next_sim_addr_;
  next_sim_addr_ += 4096;  // one simulated page per node
  ++node_count_;
  return n;
}

std::optional<BPlusTree::SplitResult> BPlusTree::insert_rec(
    Node* n, std::uint64_t key, std::uint64_t value, bool* was_new) {
  touch(n);
  if (n->leaf) {
    const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - n->keys.begin());
    if (it != n->keys.end() && *it == key) {
      n->values[idx] = value;
      *was_new = false;
      return std::nullopt;
    }
    n->keys.insert(it, key);
    n->values.insert(n->values.begin() + static_cast<std::ptrdiff_t>(idx),
                     value);
    *was_new = true;
    if (n->keys.size() < kOrder) return std::nullopt;
    // Split the leaf.
    NodePtr right(new_node(/*leaf=*/true));
    const std::size_t half = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(half),
                       n->keys.end());
    right->values.assign(n->values.begin() + static_cast<std::ptrdiff_t>(half),
                         n->values.end());
    n->keys.resize(half);
    n->values.resize(half);
    right->next = n->next;
    n->next = right.get();
    return SplitResult{right->keys.front(), std::move(right)};
  }
  // Inner node: descend.
  const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
  const auto idx = static_cast<std::size_t>(it - n->keys.begin());
  auto split = insert_rec(n->children[idx].get(), key, value, was_new);
  if (!split) return std::nullopt;
  n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(idx),
                 split->sep_key);
  n->children.insert(
      n->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
      std::move(split->right));
  if (n->children.size() <= kOrder) return std::nullopt;
  // Split the inner node: middle key moves up.
  NodePtr right(new_node(/*leaf=*/false));
  const std::size_t mid = n->keys.size() / 2;
  const std::uint64_t up = n->keys[mid];
  right->keys.assign(n->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     n->keys.end());
  for (std::size_t i = mid + 1; i < n->children.size(); ++i)
    right->children.push_back(std::move(n->children[i]));
  n->keys.resize(mid);
  n->children.resize(mid + 1);
  return SplitResult{up, std::move(right)};
}

bool BPlusTree::insert(std::uint64_t key, std::uint64_t value) {
  bool was_new = false;
  auto split = insert_rec(root_.get(), key, value, &was_new);
  if (split) {
    NodePtr new_root(new_node(/*leaf=*/false));
    new_root->keys.push_back(split->sep_key);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (was_new) ++size_;
  return was_new;
}

std::optional<std::uint64_t> BPlusTree::find(std::uint64_t key) const {
  const Node* n = root_.get();
  while (true) {
    touch(n);
    if (n->leaf) {
      const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      if (it != n->keys.end() && *it == key)
        return n->values[static_cast<std::size_t>(it - n->keys.begin())];
      return std::nullopt;
    }
    const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    n = n->children[static_cast<std::size_t>(it - n->keys.begin())].get();
  }
}

bool BPlusTree::erase(std::uint64_t key) {
  Node* n = root_.get();
  while (true) {
    touch(n);
    if (n->leaf) {
      const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      if (it == n->keys.end() || *it != key) return false;
      const auto idx = static_cast<std::size_t>(it - n->keys.begin());
      n->keys.erase(it);
      n->values.erase(n->values.begin() + static_cast<std::ptrdiff_t>(idx));
      --size_;
      return true;
    }
    const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    n = n->children[static_cast<std::size_t>(it - n->keys.begin())].get();
  }
}

void BPlusTree::scan(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<void(std::uint64_t, std::uint64_t)>& fn) const {
  if (lo > hi) return;
  const Node* n = root_.get();
  while (!n->leaf) {
    touch(n);
    const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), lo);
    n = n->children[static_cast<std::size_t>(it - n->keys.begin())].get();
  }
  while (n) {
    touch(n);
    for (std::size_t i = 0; i < n->keys.size(); ++i) {
      if (n->keys[i] < lo) continue;
      if (n->keys[i] > hi) return;
      fn(n->keys[i], n->values[i]);
    }
    n = n->next;
  }
}

int BPlusTree::height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

int BPlusTree::leaf_depth() const { return height(); }

bool BPlusTree::validate_rec(const Node* n, int depth, int leaf_d,
                             std::uint64_t lo, std::uint64_t hi) const {
  if (!std::is_sorted(n->keys.begin(), n->keys.end())) return false;
  for (std::uint64_t k : n->keys) {
    if (k < lo || k > hi) return false;
  }
  if (n->leaf) {
    if (n->keys.size() != n->values.size()) return false;
    return depth == leaf_d;
  }
  if (n->children.size() != n->keys.size() + 1) return false;
  for (std::size_t i = 0; i < n->children.size(); ++i) {
    const std::uint64_t child_lo = (i == 0) ? lo : n->keys[i - 1];
    const std::uint64_t child_hi =
        (i == n->keys.size()) ? hi : n->keys[i] - 1;
    // Right subtree keys must be >= separator; left strictly below.
    if (!validate_rec(n->children[i].get(), depth + 1, leaf_d, child_lo,
                      child_hi))
      return false;
  }
  return true;
}

bool BPlusTree::validate() const {
  const bool structure =
      validate_rec(root_.get(), 1, leaf_depth(), 0, ~0ULL);
  if (!structure) return false;
  // Leaf chain must reproduce an ascending full scan of `size_` entries.
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  std::size_t seen = 0;
  std::uint64_t prev = 0;
  bool first = true;
  while (n) {
    for (std::uint64_t k : n->keys) {
      if (!first && k <= prev) return false;
      prev = k;
      first = false;
      ++seen;
    }
    n = n->next;
  }
  return seen == size_;
}

}  // namespace confbench::wl::db

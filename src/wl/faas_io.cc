// I/O-bound FaaS workloads — the ones where the TDX bounce-buffer path and
// the CCA double-virtualised I/O show their cost (§IV-D).
#include <sstream>
#include <string>

#include "wl/faas.h"

namespace confbench::wl {

namespace {

// --- iostress: dd-style 1-MB file writes/reads (§IV-D) -----------------------
std::string iostress(rt::RtContext& env) {
  constexpr std::uint64_t kFile = 1 << 20;
  constexpr std::uint64_t kBlock = 64 * 1024;
  constexpr int kFiles = 8;
  std::uint64_t written = 0, read_back = 0;
  auto& fs = env.fs();
  fs.mkdir("/tmp");
  for (int f = 0; f < kFiles; ++f) {
    const std::string path = "/tmp/io_" + std::to_string(f) + ".dat";
    fs.create(path);
    for (std::uint64_t off = 0; off < kFile; off += kBlock) {
      written += fs.write(path, kBlock);
      env.syscall();  // dd issues an extra stat/seek pattern
    }
    fs.fsync(path);          // dd conv=fsync
    fs.drop_caches();        // force device reads on the way back
    for (std::uint64_t off = 0; off < kFile; off += kBlock)
      read_back += fs.read(path, off, kBlock);
    fs.unlink(path);
  }
  env.op(kFiles * 3000.0, kFiles * 400.0);
  std::ostringstream os;
  os << "iostress:" << written << ":" << read_back;
  return os.str();
}

// --- logging: print 3000 messages (§IV-D) -------------------------------------
std::string logging(rt::RtContext& env) {
  constexpr int kLines = 3000;
  for (int i = 0; i < kLines; ++i) {
    env.print("[worker] processed request id=" + std::to_string(i) +
              " status=ok latency_ms=" + std::to_string((i * 7) % 113));
  }
  return "logging:" + std::to_string(kLines);
}

// --- filesystem: nested folders, 1-MB file, read/write, cleanup (§IV-D) --------
std::string filesystem(rt::RtContext& env) {
  auto& fs = env.fs();
  constexpr std::uint64_t kFile = 1 << 20;
  constexpr int kReps = 6;
  int ops_ok = 0;
  for (int r = 0; r < kReps; ++r) {
    const std::string outer = "/work/outer" + std::to_string(r);
    const std::string inner = outer + "/inner";
    const std::string file = inner + "/data.bin";
    if (r == 0) fs.mkdir("/work");
    ops_ok += fs.mkdir(outer);
    ops_ok += fs.mkdir(inner);
    ops_ok += fs.create(file);
    ops_ok += fs.write(file, kFile) == kFile;
    ops_ok += fs.fsync(file);
    ops_ok += fs.read(file, 0, kFile) == kFile;
    ops_ok += fs.unlink(file);
    ops_ok += fs.rmdir(inner);
    ops_ok += fs.rmdir(outer);
  }
  env.op(kReps * 1200.0, kReps * 150.0);
  return "filesystem:" + std::to_string(ops_ok) + "/" +
         std::to_string(kReps * 9);
}

// --- kvstore: small-record persistence (FaaSdom-style dynamic workload) --------
std::string kvstore(rt::RtContext& env) {
  auto& fs = env.fs();
  constexpr int kRecords = 600;
  constexpr std::uint64_t kRecordBytes = 512;
  fs.mkdir("/kv");
  std::uint64_t stored = 0, fetched = 0;
  for (int i = 0; i < kRecords; ++i) {
    const std::string path = "/kv/rec" + std::to_string(i % 50) + ".log";
    stored += fs.write(path, kRecordBytes);
    if (i % 4 == 0) fs.fsync(path);  // durability every 4th put
    env.op(900, 90);                 // serialise record
  }
  for (int i = 0; i < kRecords; ++i) {
    const std::string path = "/kv/rec" + std::to_string(i % 50) + ".log";
    fetched += fs.read(path, (i % 10) * kRecordBytes, kRecordBytes) > 0;
    env.op(500, 60);  // deserialise
  }
  return "kvstore:" + std::to_string(stored) + ":" + std::to_string(fetched);
}

}  // namespace

void register_io_workloads(std::vector<FaasWorkload>& out) {
  out.push_back({"iostress", Category::kIo, iostress});
  out.push_back({"logging", Category::kIo, logging});
  out.push_back({"filesystem", Category::kIo, filesystem});
  out.push_back({"kvstore", Category::kIo, kvstore});
}

}  // namespace confbench::wl

#include "wl/ml/model.h"

#include <algorithm>
#include <cmath>

#include "sim/rng.h"

namespace confbench::wl::ml {

double LayerSpec::macs() const {
  const int out_hw = (in_hw + stride - 1) / stride;
  const double spatial = static_cast<double>(out_hw) * out_hw;
  switch (kind) {
    case Kind::kConv:
      return spatial * out_c * 9.0 * in_c;
    case Kind::kDepthwise:
      return spatial * in_c * 9.0;
    case Kind::kPointwise:
      return spatial * static_cast<double>(in_c) * out_c;
  }
  return 0;
}

double LayerSpec::weight_bytes() const {
  switch (kind) {
    case Kind::kConv:
      return 4.0 * out_c * 9.0 * in_c;
    case Kind::kDepthwise:
      return 4.0 * 9.0 * in_c;
    case Kind::kPointwise:
      return 4.0 * static_cast<double>(in_c) * out_c;
  }
  return 0;
}

double LayerSpec::out_act_bytes() const {
  const int out_hw = (in_hw + stride - 1) / stride;
  return 4.0 * out_hw * out_hw * out_c;
}

const std::vector<LayerSpec>& mobilenet_v1_layers() {
  using K = LayerSpec::Kind;
  static const std::vector<LayerSpec> kLayers = {
      {K::kConv, 224, 3, 32, 2},
      {K::kDepthwise, 112, 32, 32, 1},   {K::kPointwise, 112, 32, 64, 1},
      {K::kDepthwise, 112, 64, 64, 2},   {K::kPointwise, 56, 64, 128, 1},
      {K::kDepthwise, 56, 128, 128, 1},  {K::kPointwise, 56, 128, 128, 1},
      {K::kDepthwise, 56, 128, 128, 2},  {K::kPointwise, 28, 128, 256, 1},
      {K::kDepthwise, 28, 256, 256, 1},  {K::kPointwise, 28, 256, 256, 1},
      {K::kDepthwise, 28, 256, 256, 2},  {K::kPointwise, 14, 256, 512, 1},
      {K::kDepthwise, 14, 512, 512, 1},  {K::kPointwise, 14, 512, 512, 1},
      {K::kDepthwise, 14, 512, 512, 1},  {K::kPointwise, 14, 512, 512, 1},
      {K::kDepthwise, 14, 512, 512, 1},  {K::kPointwise, 14, 512, 512, 1},
      {K::kDepthwise, 14, 512, 512, 1},  {K::kPointwise, 14, 512, 512, 1},
      {K::kDepthwise, 14, 512, 512, 1},  {K::kPointwise, 14, 512, 512, 1},
      {K::kDepthwise, 14, 512, 512, 2},  {K::kPointwise, 7, 512, 1024, 1},
      {K::kDepthwise, 7, 1024, 1024, 1}, {K::kPointwise, 7, 1024, 1024, 1},
  };
  return kLayers;
}

namespace {
std::vector<float> random_weights(sim::Rng& rng, std::size_t n,
                                  double stddev) {
  std::vector<float> w(n);
  for (auto& v : w)
    v = static_cast<float>(rng.next_gaussian() * stddev);
  return w;
}

int reduced_channels(int full, int scale) {
  return std::max(2, full / scale);
}
}  // namespace

MobileNetModel::MobileNetModel(std::uint64_t seed, int reduced_scale)
    : scale_(reduced_scale), reduced_hw_(224 / reduced_scale) {
  sim::Rng rng(sim::hash_combine(seed, sim::stable_hash("mobilenet-v1")));
  const auto& layers = mobilenet_v1_layers();
  layer_weights_.reserve(layers.size());
  layer_bias_.reserve(layers.size());
  for (const auto& l : layers) {
    const int ic = reduced_channels(l.in_c, scale_);
    const int oc = reduced_channels(l.out_c, scale_);
    std::size_t n = 0;
    int bias_n = oc;
    switch (l.kind) {
      case LayerSpec::Kind::kConv:
        n = static_cast<std::size_t>(oc) * 9 *
            (l.in_c == 3 ? 3 : ic);  // RGB stem keeps 3 input channels
        break;
      case LayerSpec::Kind::kDepthwise:
        n = 9ULL * ic;
        bias_n = ic;
        break;
      case LayerSpec::Kind::kPointwise:
        n = static_cast<std::size_t>(oc) * ic;
        break;
    }
    const double fan_in = std::max<std::size_t>(n / std::max(1, bias_n), 1);
    layer_weights_.push_back(random_weights(rng, n, 1.0 / std::sqrt(fan_in)));
    layer_bias_.push_back(
        random_weights(rng, static_cast<std::size_t>(bias_n), 0.01));
  }
  const int feat = reduced_channels(1024, scale_);
  fc_weights_ = random_weights(rng, static_cast<std::size_t>(kClasses) * feat,
                               1.0 / std::sqrt(feat));
  fc_bias_ = random_weights(rng, kClasses, 0.01);
}

MlResult MobileNetModel::classify(vm::ExecutionContext& ctx,
                                  const Tensor& input) const {
  const auto& layers = mobilenet_v1_layers();
  // Charge full-scale costs: weights + activations regions.
  const std::uint64_t weights_region = ctx.alloc_region(18ULL << 20, 4096);
  const std::uint64_t act_a = ctx.alloc_region(4ULL << 20, 4096);
  const std::uint64_t act_b = ctx.alloc_region(4ULL << 20, 4096);

  Tensor t = input;
  double weight_off = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerSpec& l = layers[i];
    // --- real (reduced-scale) math -------------------------------------
    switch (l.kind) {
      case LayerSpec::Kind::kConv:
        t = conv2d(t, layer_weights_[i], layer_bias_[i], 3,
                   static_cast<int>(layer_bias_[i].size()), l.stride);
        break;
      case LayerSpec::Kind::kDepthwise:
        t = depthwise_conv2d(t, layer_weights_[i], layer_bias_[i], 3,
                             l.stride);
        break;
      case LayerSpec::Kind::kPointwise:
        t = pointwise_conv2d(t, layer_weights_[i], layer_bias_[i],
                             static_cast<int>(layer_bias_[i].size()));
        break;
    }
    relu6(t);
    // --- full-scale cost charges ----------------------------------------
    ctx.compute_fp(2.0 * l.macs());
    ctx.compute(l.macs() * 0.15, l.macs() * 0.02);  // addressing + loops
    const std::uint64_t src = (i % 2 == 0) ? act_a : act_b;
    const std::uint64_t dst = (i % 2 == 0) ? act_b : act_a;
    const auto in_bytes = static_cast<std::uint64_t>(
        4.0 * l.in_hw * l.in_hw * l.in_c);
    ctx.mem_read(src, in_bytes, 64);
    ctx.mem_read(weights_region + static_cast<std::uint64_t>(weight_off),
                 static_cast<std::uint64_t>(l.weight_bytes()), 64);
    ctx.mem_write(dst, static_cast<std::uint64_t>(l.out_act_bytes()), 64);
    weight_off += l.weight_bytes();
  }

  // Head: global average pool + FC(1024 -> 1000) + softmax.
  const Tensor pooled = global_avg_pool(t);
  const std::vector<float> logits =
      dense(pooled.data, fc_weights_, fc_bias_, kClasses);
  const std::vector<float> probs = softmax(logits);
  ctx.compute_fp(2.0 * 1024.0 * kClasses + 3.0 * kClasses);
  ctx.mem_read(weights_region + static_cast<std::uint64_t>(weight_off),
               4ULL * 1024 * kClasses, 64);

  MlResult r;
  const auto it = std::max_element(probs.begin(), probs.end());
  r.label = static_cast<int>(it - probs.begin());
  r.confidence = *it;
  return r;
}

void install_image_dataset(vm::Vfs& fs, int count, std::uint64_t bytes_each) {
  fs.mkdir("/data");
  for (int i = 0; i < count; ++i) {
    const std::string path = "/data/img_" + std::to_string(i) + ".bin";
    fs.create(path);
    fs.write(path, bytes_each);
    fs.fsync(path);
  }
  fs.drop_caches();  // images start cold, as if freshly uploaded
}

Tensor load_and_decode(vm::ExecutionContext& ctx, vm::Vfs& fs, int index,
                       int target_hw) {
  const std::string path = "/data/img_" + std::to_string(index) + ".bin";
  const std::uint64_t size = fs.file_size(path);
  // Read the compressed blob in 256-KiB chunks.
  for (std::uint64_t off = 0; off < size; off += 256 * 1024)
    fs.read(path, off, std::min<std::uint64_t>(256 * 1024, size - off));
  // JPEG-style decode: ~90 ops per output pixel at full 224x224x3.
  const double full_pixels = 224.0 * 224 * 3;
  ctx.compute(full_pixels * 90.0, full_pixels * 4.0);
  ctx.compute_fp(full_pixels * 12.0);  // IDCT + colour conversion

  // Deterministic pixels derived from the image index (the real math input).
  Tensor t(target_hw, target_hw, 3);
  sim::Rng rng(sim::hash_combine(0xD9A7ALL, static_cast<std::uint64_t>(index)));
  for (auto& v : t.data)
    v = static_cast<float>(rng.next_double() * 2.0 - 1.0);
  return t;
}

}  // namespace confbench::wl::ml

#include "wl/ml/tensor.h"

#include <algorithm>
#include <cmath>

namespace confbench::wl::ml {

namespace {
int out_dim(int in, int stride) { return (in + stride - 1) / stride; }
}  // namespace

Tensor conv2d(const Tensor& in, const std::vector<float>& weights,
              const std::vector<float>& bias, int k, int out_c, int stride) {
  const int oh = out_dim(in.h, stride), ow = out_dim(in.w, stride);
  Tensor out(oh, ow, out_c);
  const int pad = (k - 1) / 2;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int oc = 0; oc < out_c; ++oc) {
        float acc = bias[oc];
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= in.h) continue;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= in.w) continue;
            const std::size_t wbase =
                ((static_cast<std::size_t>(oc) * k + ky) * k + kx) * in.c;
            for (int ic = 0; ic < in.c; ++ic)
              acc += in.at(iy, ix, ic) * weights[wbase + ic];
          }
        }
        out.at(oy, ox, oc) = acc;
      }
    }
  }
  return out;
}

Tensor depthwise_conv2d(const Tensor& in, const std::vector<float>& weights,
                        const std::vector<float>& bias, int k, int stride) {
  const int oh = out_dim(in.h, stride), ow = out_dim(in.w, stride);
  Tensor out(oh, ow, in.c);
  const int pad = (k - 1) / 2;
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int ch = 0; ch < in.c; ++ch) {
        float acc = bias[ch];
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= in.h) continue;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= in.w) continue;
            acc += in.at(iy, ix, ch) *
                   weights[(static_cast<std::size_t>(ky) * k + kx) * in.c + ch];
          }
        }
        out.at(oy, ox, ch) = acc;
      }
    }
  }
  return out;
}

Tensor pointwise_conv2d(const Tensor& in, const std::vector<float>& weights,
                        const std::vector<float>& bias, int out_c) {
  Tensor out(in.h, in.w, out_c);
  for (int y = 0; y < in.h; ++y) {
    for (int x = 0; x < in.w; ++x) {
      for (int oc = 0; oc < out_c; ++oc) {
        float acc = bias[oc];
        const std::size_t wbase = static_cast<std::size_t>(oc) * in.c;
        for (int ic = 0; ic < in.c; ++ic)
          acc += in.at(y, x, ic) * weights[wbase + ic];
        out.at(y, x, oc) = acc;
      }
    }
  }
  return out;
}

void relu6(Tensor& t) {
  for (float& v : t.data) v = std::clamp(v, 0.0f, 6.0f);
}

Tensor global_avg_pool(const Tensor& in) {
  Tensor out(1, 1, in.c);
  const float inv = 1.0f / (static_cast<float>(in.h) * in.w);
  for (int y = 0; y < in.h; ++y)
    for (int x = 0; x < in.w; ++x)
      for (int ch = 0; ch < in.c; ++ch) out.at(0, 0, ch) += in.at(y, x, ch);
  for (float& v : out.data) v *= inv;
  return out;
}

std::vector<float> dense(const std::vector<float>& in,
                         const std::vector<float>& weights,
                         const std::vector<float>& bias, int out_n) {
  std::vector<float> out(static_cast<std::size_t>(out_n));
  for (int o = 0; o < out_n; ++o) {
    float acc = bias[o];
    const std::size_t wbase = static_cast<std::size_t>(o) * in.size();
    for (std::size_t i = 0; i < in.size(); ++i)
      acc += in[i] * weights[wbase + i];
    out[o] = acc;
  }
  return out;
}

std::vector<float> softmax(const std::vector<float>& logits) {
  std::vector<float> out(logits.size());
  if (logits.empty()) return out;
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - mx);
    sum += out[i];
  }
  for (float& v : out) v /= sum;
  return out;
}

}  // namespace confbench::wl::ml

// MobileNet-v1-shaped classifier for the confidential-ML experiment (Fig. 3).
//
// The paper classifies 40 diversified 1-MB images with TensorFlow Lite
// MobileNet [51], [54]. We run a real depthwise-separable CNN with the
// exact MobileNetV1 layer topology, executed at a reduced spatial/channel
// scale (so the real arithmetic stays laptop-fast) while the simulation is
// charged at the *full* 224x224 model scale — full MAC counts, weight and
// activation traffic per layer. Images are synthetic 1-MB blobs stored in
// the guest VFS and decoded for real, so the I/O and preprocessing phases
// of the pipeline are exercised too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/exec_context.h"
#include "vm/vfs.h"
#include "wl/ml/tensor.h"

namespace confbench::wl::ml {

/// One layer of the full-scale MobileNetV1 topology.
struct LayerSpec {
  enum class Kind { kConv, kDepthwise, kPointwise } kind;
  int in_hw;    ///< input spatial size at 224-scale
  int in_c;     ///< input channels at full scale
  int out_c;    ///< output channels at full scale
  int stride;
  [[nodiscard]] double macs() const;          ///< full-scale multiply-accumulates
  [[nodiscard]] double weight_bytes() const;  ///< float32 weights
  [[nodiscard]] double out_act_bytes() const;
};

/// The standard MobileNetV1 stack (~569M MACs, ~4.2M params).
const std::vector<LayerSpec>& mobilenet_v1_layers();

struct MlResult {
  int label = -1;
  float confidence = 0;
};

class MobileNetModel {
 public:
  /// `seed` initialises deterministic pseudo-trained weights;
  /// `reduced_scale` divides spatial dims and channels for the real math.
  explicit MobileNetModel(std::uint64_t seed = 1, int reduced_scale = 8);

  /// Classifies one decoded image tensor, charging the context at full
  /// model scale.
  [[nodiscard]] MlResult classify(vm::ExecutionContext& ctx,
                                  const Tensor& input) const;

  /// Number of classes in the head.
  [[nodiscard]] int num_classes() const { return kClasses; }
  [[nodiscard]] int input_hw() const { return reduced_hw_; }

 private:
  static constexpr int kClasses = 1000;
  int scale_;
  int reduced_hw_;
  std::vector<std::vector<float>> layer_weights_;
  std::vector<std::vector<float>> layer_bias_;
  std::vector<float> fc_weights_;
  std::vector<float> fc_bias_;
};

/// Writes the 40-image dataset (1 MB each, deterministic contents) into the
/// VFS under /data/img_<i>.bin, mirroring the GuaranTEE dataset [51].
void install_image_dataset(vm::Vfs& fs, int count = 40,
                           std::uint64_t bytes_each = 1 << 20);

/// Loads + decodes image `index` from the VFS into a model-ready tensor,
/// charging I/O and per-pixel decode work.
Tensor load_and_decode(vm::ExecutionContext& ctx, vm::Vfs& fs, int index,
                       int target_hw);

}  // namespace confbench::wl::ml

// Minimal NHWC float tensor + the convolution kernels MobileNet needs.
//
// These do real arithmetic: tests check numeric properties (shape algebra,
// ReLU clamping, softmax normalisation, depthwise vs dense equivalence on
// identity kernels). The simulation charges costs separately at the paper's
// full model scale (see wl/ml/model.h).
#pragma once

#include <cstdint>
#include <vector>

namespace confbench::wl::ml {

struct Tensor {
  int h = 0, w = 0, c = 0;
  std::vector<float> data;  // NHWC, single batch

  Tensor() = default;
  Tensor(int h_, int w_, int c_) : h(h_), w(w_), c(c_) {
    data.assign(static_cast<std::size_t>(h) * w * c, 0.0f);
  }

  [[nodiscard]] float& at(int y, int x, int ch) {
    return data[(static_cast<std::size_t>(y) * w + x) * c + ch];
  }
  [[nodiscard]] float at(int y, int x, int ch) const {
    return data[(static_cast<std::size_t>(y) * w + x) * c + ch];
  }
  [[nodiscard]] std::size_t size() const { return data.size(); }
};

/// Standard KxK convolution, stride s, SAME padding.
/// weights layout: [out_c][k][k][in_c]; bias: [out_c].
Tensor conv2d(const Tensor& in, const std::vector<float>& weights,
              const std::vector<float>& bias, int k, int out_c, int stride);

/// Depthwise KxK convolution, stride s, SAME padding.
/// weights layout: [k][k][c]; bias: [c].
Tensor depthwise_conv2d(const Tensor& in, const std::vector<float>& weights,
                        const std::vector<float>& bias, int k, int stride);

/// 1x1 (pointwise) convolution. weights: [out_c][in_c].
Tensor pointwise_conv2d(const Tensor& in, const std::vector<float>& weights,
                        const std::vector<float>& bias, int out_c);

/// ReLU6 in place (MobileNet's activation).
void relu6(Tensor& t);

/// Global average pooling to a 1x1xC tensor.
Tensor global_avg_pool(const Tensor& in);

/// Dense layer on a flattened tensor. weights: [out][in].
std::vector<float> dense(const std::vector<float>& in,
                         const std::vector<float>& weights,
                         const std::vector<float>& bias, int out_n);

/// Numerically-stable softmax.
std::vector<float> softmax(const std::vector<float>& logits);

}  // namespace confbench::wl::ml

// FaaS workload catalogue.
//
// 25 functions drawn from the suites the paper uses (FaaSdom,
// FaaS-benchmark, Lua-Benchmarks, wasmi-benchmarks; §IV-B) plus the six
// functions described in §IV-D (cpustress, memstress, iostress, logging,
// factors, filesystem). Each function performs its real computation in C++
// and reports its work to the RtContext, so one implementation runs under
// every language profile — like the paper's cross-language ports.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "rt/runtime.h"

namespace confbench::wl {

enum class Category { kCpu, kMemory, kIo, kMixed };

std::string_view to_string(Category c);

struct FaasWorkload {
  std::string name;
  Category category;
  /// The function body; returns its textual output (the launcher makes
  /// outputs uniform across languages, §IV-B).
  std::function<std::string(rt::RtContext&)> body;
};

/// All 25 workloads, in heatmap row order.
const std::vector<FaasWorkload>& faas_workloads();

/// Lookup by name; nullptr if unknown.
const FaasWorkload* find_faas(const std::string& name);

// Internal: category registration helpers (one per translation unit).
void register_cpu_workloads(std::vector<FaasWorkload>& out);
void register_mem_workloads(std::vector<FaasWorkload>& out);
void register_io_workloads(std::vector<FaasWorkload>& out);

}  // namespace confbench::wl

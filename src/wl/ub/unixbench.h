// Byte-UnixBench-style OS microbenchmark suite (Fig. 4).
//
// Eleven single-threaded tests mirroring the classic suite. Each test runs
// a bounded workload, measures virtual elapsed time and converts it into
// the suite's native unit (lps / KBps / MWIPS / lpm); the index score
// divides by the reference system's score — a SPARCstation 20-61 with
// Solaris 2.3, exactly as UnixBench and the paper describe — times 10.
// The aggregate index is the geometric mean of per-test indexes.
#pragma once

#include <string>
#include <vector>

#include "vm/exec_context.h"
#include "vm/vfs.h"

namespace confbench::wl::ub {

struct UbResult {
  std::string name;
  double score = 0;     ///< in the test's native unit
  double baseline = 1;  ///< SPARCstation 20-61 reference score
  std::string unit;

  [[nodiscard]] double index() const { return score / baseline * 10.0; }
};

/// Runs the whole suite (single-threaded configuration, as in §IV-C).
std::vector<UbResult> run_unixbench(vm::ExecutionContext& ctx, vm::Vfs& fs);

/// Geometric mean of the per-test indexes: the headline UnixBench score.
double aggregate_index(const std::vector<UbResult>& results);

}  // namespace confbench::wl::ub

#include "wl/ub/unixbench.h"

#include <cmath>

#include "metrics/stats.h"

namespace confbench::wl::ub {

namespace {

/// Helper: measures `fn` and converts `work_units` into units/second.
template <typename Fn>
double rate_per_sec(vm::ExecutionContext& ctx, double work_units, Fn&& fn) {
  const sim::Ns start = ctx.now();
  fn();
  const sim::Ns elapsed = ctx.now() - start;
  return elapsed > 0 ? work_units / (elapsed / sim::kSec) : 0.0;
}

// --- Dhrystone 2: integer/string register workout ---------------------------
double dhrystone(vm::ExecutionContext& ctx) {
  constexpr int kLoops = 400000;
  // A token real computation keeping the loop honest.
  std::uint32_t v = 1;
  for (int i = 0; i < kLoops / 1000; ++i) v = v * 69069u + 1u;
  // One dhrystone loop ~ 100 simple ops + a handful of branches.
  return rate_per_sec(ctx, kLoops, [&] {
    ctx.compute(kLoops * 100.0, kLoops * 18.0);
    const std::uint64_t rec = ctx.alloc_region(1 << 16);
    ctx.mem_read(rec, (1 << 16) * 8, 64);
    ctx.mem_write(rec, (1 << 16) * 4, 64);
    if (v == 0) ctx.compute(1, 0);  // consume v
  });
}

// --- Whetstone: double-precision FP -----------------------------------------
double whetstone(vm::ExecutionContext& ctx) {
  constexpr double kMflop = 60.0;  // millions of Whetstone instructions
  double x = 1.0;
  for (int i = 0; i < 2000; ++i) x = std::sin(x) + 1.001;
  const sim::Ns start = ctx.now();
  ctx.compute_fp(kMflop * 1e6);
  ctx.compute(kMflop * 1e6 * 0.2, kMflop * 1e6 * 0.05);
  const sim::Ns elapsed = ctx.now() - start;
  if (x > 1e12) return 0;  // never taken; defeats optimisation
  return kMflop / (elapsed / sim::kSec);  // MWIPS
}

// --- Execl Throughput ---------------------------------------------------------
double execl_tp(vm::ExecutionContext& ctx) {
  constexpr int kLoops = 400;
  return rate_per_sec(ctx, kLoops, [&] {
    for (int i = 0; i < kLoops; ++i) ctx.spawn_process();
  });
}

// --- File copy with a given buffer size ----------------------------------------
// UnixBench's file-copy tests copy a small file repeatedly; the working set
// lives in the page cache, so the cost is syscalls + kernel memcpy (which in
// confidential VMs rides the memory-encryption engine), not device DMA.
double file_copy(vm::ExecutionContext& ctx, vm::Vfs& fs, std::uint64_t bufsize,
                 std::uint64_t max_blocks) {
  const std::uint64_t file_bytes = bufsize * max_blocks;
  const std::string src = "/ub/src_" + std::to_string(bufsize);
  const std::string dst = "/ub/dst_" + std::to_string(bufsize);
  fs.mkdir("/ub");
  fs.create(src);
  fs.write(src, file_bytes);
  fs.create(dst);
  // Warm-up pass: fault the working set in (UnixBench measures steady state).
  for (std::uint64_t off = 0; off < file_bytes; off += bufsize) {
    fs.read(src, off, bufsize);
    fs.write(dst, bufsize);
  }
  fs.truncate(dst);
  constexpr int kPasses = 3;
  const sim::Ns start = ctx.now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (std::uint64_t off = 0; off < file_bytes; off += bufsize) {
      fs.read(src, off, bufsize);
      fs.write(dst, bufsize);
    }
    fs.truncate(dst);
  }
  const sim::Ns elapsed = ctx.now() - start;
  fs.unlink(src);
  fs.unlink(dst);
  const double copied_kb =
      static_cast<double>(file_bytes) * kPasses / 1024.0;
  return copied_kb / (elapsed / sim::kSec);  // KBps
}

// --- Pipe Throughput -------------------------------------------------------------
double pipe_tp(vm::ExecutionContext& ctx) {
  constexpr int kLoops = 30000;
  return rate_per_sec(ctx, kLoops, [&] {
    for (int i = 0; i < kLoops; ++i) ctx.pipe_transfer(512);
  });
}

// --- Pipe-based Context Switching ---------------------------------------------
double pipe_ctx_switch(vm::ExecutionContext& ctx) {
  constexpr int kLoops = 12000;
  return rate_per_sec(ctx, kLoops, [&] {
    for (int i = 0; i < kLoops; ++i) {
      ctx.pipe_transfer(4);   // token ping
      ctx.context_switch();   // scheduler hands over
      ctx.pipe_transfer(4);   // token pong
      ctx.context_switch();
    }
  });
}

// --- Process Creation -------------------------------------------------------------
double process_creation(vm::ExecutionContext& ctx) {
  constexpr int kLoops = 600;
  return rate_per_sec(ctx, kLoops, [&] {
    for (int i = 0; i < kLoops; ++i) {
      ctx.spawn_process();
      ctx.context_switch();  // parent wait + child exit
    }
  });
}

// --- Shell Scripts (1 concurrent) ------------------------------------------------
double shell_scripts(vm::ExecutionContext& ctx, vm::Vfs& fs) {
  constexpr int kLoops = 60;
  fs.mkdir("/ub_sh");
  const double lps = rate_per_sec(ctx, kLoops, [&] {
    for (int i = 0; i < kLoops; ++i) {
      // One script: sh + sort|od|grep|tee pipeline -> ~6 spawns, file churn.
      for (int p = 0; p < 6; ++p) ctx.spawn_process();
      const std::string tmp = "/ub_sh/t" + std::to_string(i % 4);
      fs.write(tmp, 2048);
      fs.read(tmp, 0, 2048);
      fs.unlink(tmp);
      ctx.compute(60000, 9000);
    }
  });
  return lps * 60.0;  // loops per minute
}

// --- System Call Overhead ----------------------------------------------------------
double syscall_overhead(vm::ExecutionContext& ctx) {
  constexpr int kLoops = 80000;
  return rate_per_sec(ctx, kLoops, [&] {
    for (int i = 0; i < kLoops; ++i) ctx.syscall();
  });
}

}  // namespace

std::vector<UbResult> run_unixbench(vm::ExecutionContext& ctx, vm::Vfs& fs) {
  std::vector<UbResult> r;
  r.push_back({"Dhrystone 2 using register variables", dhrystone(ctx),
               116700.0, "lps"});
  r.push_back({"Double-Precision Whetstone", whetstone(ctx), 55.0, "MWIPS"});
  r.push_back({"Execl Throughput", execl_tp(ctx), 43.0, "lps"});
  r.push_back({"File Copy 1024 bufsize 2000 maxblocks",
               file_copy(ctx, fs, 1024, 2000), 3960.0, "KBps"});
  r.push_back({"File Copy 256 bufsize 500 maxblocks",
               file_copy(ctx, fs, 256, 500), 1655.0, "KBps"});
  r.push_back({"File Copy 4096 bufsize 8000 maxblocks",
               file_copy(ctx, fs, 4096, 800), 5800.0, "KBps"});
  r.push_back({"Pipe Throughput", pipe_tp(ctx), 12440.0, "lps"});
  r.push_back({"Pipe-based Context Switching", pipe_ctx_switch(ctx), 4000.0,
               "lps"});
  r.push_back({"Process Creation", process_creation(ctx), 126.0, "lps"});
  r.push_back({"Shell Scripts (1 concurrent)", shell_scripts(ctx, fs), 42.4,
               "lpm"});
  r.push_back({"System Call Overhead", syscall_overhead(ctx), 15000.0,
               "lps"});
  return r;
}

double aggregate_index(const std::vector<UbResult>& results) {
  std::vector<double> idx;
  idx.reserve(results.size());
  for (const auto& r : results) idx.push_back(r.index());
  return metrics::geometric_mean(idx);
}

}  // namespace confbench::wl::ub

#include "wl/faas.h"

namespace confbench::wl {

std::string_view to_string(Category c) {
  switch (c) {
    case Category::kCpu:
      return "cpu";
    case Category::kMemory:
      return "memory";
    case Category::kIo:
      return "io";
    case Category::kMixed:
      return "mixed";
  }
  return "?";
}

const std::vector<FaasWorkload>& faas_workloads() {
  static const std::vector<FaasWorkload> kAll = [] {
    std::vector<FaasWorkload> v;
    register_cpu_workloads(v);
    register_mem_workloads(v);
    register_io_workloads(v);
    return v;
  }();
  return kAll;
}

const FaasWorkload* find_faas(const std::string& name) {
  for (const auto& w : faas_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace confbench::wl

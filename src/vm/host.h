// TEE-enabled host machine.
//
// Hosts receive requests from the gateway and route them to a local VM
// based on the destination port (§III-A): the prototype uses socat to steer
// traffic, which we model as an explicit port -> VM map. By convention a
// host exposes its normal VM on kNormalPort and its confidential VM on
// kSecurePort, but arbitrary mappings are supported.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "tee/platform.h"
#include "vm/guest_vm.h"

namespace confbench::vm {

class Host {
 public:
  static constexpr std::uint16_t kNormalPort = 8100;
  static constexpr std::uint16_t kSecurePort = 8200;

  Host(std::string name, tee::PlatformPtr platform);

  /// Creates (and boots) a VM on this host and maps it to `port`.
  GuestVm& add_vm(const std::string& vm_name, bool secure,
                  std::uint16_t port);

  /// Convenience: creates the standard normal+secure VM pair.
  void add_standard_pair();

  /// socat-style routing: resolves the VM listening on `port`.
  [[nodiscard]] GuestVm* route(std::uint16_t port);
  [[nodiscard]] const GuestVm* route(std::uint16_t port) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const tee::Platform& platform() const { return *platform_; }
  [[nodiscard]] tee::PlatformPtr platform_ptr() const { return platform_; }
  [[nodiscard]] std::vector<std::uint16_t> ports() const;
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }

 private:
  std::string name_;
  tee::PlatformPtr platform_;
  std::vector<std::unique_ptr<GuestVm>> vms_;
  std::map<std::uint16_t, GuestVm*> port_map_;
};

}  // namespace confbench::vm

#include "vm/block_device.h"

namespace confbench::vm {

void BlockDevice::read(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t n = round_up(bytes);
  ++reads_;
  bytes_read_ += n;
  ctx_.block_read(n);
}

void BlockDevice::write(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t n = round_up(bytes);
  ++writes_;
  bytes_written_ += n;
  ctx_.block_write(n);
}

}  // namespace confbench::vm

#include "vm/host.h"

#include <stdexcept>

namespace confbench::vm {

Host::Host(std::string name, tee::PlatformPtr platform)
    : name_(std::move(name)), platform_(std::move(platform)) {
  if (!platform_) throw std::invalid_argument("host without platform");
}

GuestVm& Host::add_vm(const std::string& vm_name, bool secure,
                      std::uint16_t port) {
  if (port_map_.count(port))
    throw std::invalid_argument("port already mapped on host " + name_);
  VmConfig cfg;
  cfg.name = name_ + "/" + vm_name;
  cfg.platform = platform_;
  cfg.secure = secure;
  vms_.push_back(std::make_unique<GuestVm>(cfg));
  GuestVm& vm = *vms_.back();
  vm.boot();
  port_map_[port] = &vm;
  return vm;
}

void Host::add_standard_pair() {
  add_vm("normal", /*secure=*/false, kNormalPort);
  add_vm("secure", /*secure=*/true, kSecurePort);
}

GuestVm* Host::route(std::uint16_t port) {
  auto it = port_map_.find(port);
  return it == port_map_.end() ? nullptr : it->second;
}

const GuestVm* Host::route(std::uint16_t port) const {
  auto it = port_map_.find(port);
  return it == port_map_.end() ? nullptr : it->second;
}

std::vector<std::uint16_t> Host::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(port_map_.size());
  for (const auto& [p, _] : port_map_) out.push_back(p);
  return out;
}

}  // namespace confbench::vm

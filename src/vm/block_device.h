// Virtual block device.
//
// Rounds transfers to 4 KiB sectors, tracks request statistics, and charges
// I/O through the ExecutionContext, which applies the platform's virtio and
// bounce-buffer costs (the TDX swiotlb path of §IV-D).
#pragma once

#include <cstdint>

#include "vm/exec_context.h"

namespace confbench::vm {

class BlockDevice {
 public:
  static constexpr std::uint64_t kSector = 4096;

  explicit BlockDevice(ExecutionContext& ctx) : ctx_(ctx) {}

  void read(std::uint64_t bytes);
  void write(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  static std::uint64_t round_up(std::uint64_t bytes) {
    return (bytes + kSector - 1) / kSector * kSector;
  }

  ExecutionContext& ctx_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace confbench::vm

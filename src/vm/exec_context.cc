#include "vm/exec_context.h"

#include <cassert>
#include <stdexcept>

namespace confbench::vm {

namespace {
// Typical branch misprediction rate and penalty for the abstract core.
constexpr double kBranchMissRate = 0.02;
constexpr double kBranchMissCycles = 14.0;
// Kernel-buffer copy throughput for pipes (~16 GB/s round trip).
constexpr double kPipeCopyNsPerByte = 0.06;

tee::PlatformPtr require_platform(tee::PlatformPtr p) {
  if (!p) throw std::invalid_argument("null platform");
  return p;
}
}  // namespace

ExecutionContext::ExecutionContext(tee::PlatformPtr platform, bool secure,
                                   std::uint64_t seed)
    : platform_(require_platform(std::move(platform))),
      secure_(secure),
      costs_(platform_->costs(secure)),
      rng_(sim::hash_combine(seed, sim::stable_hash(platform_->name()) ^
                                       (secure ? 0x5ecu : 0x00u))),
      memenc_(secure && (costs_.mem.enc_extra_ns > 0 ||
                         costs_.mem.integrity_extra_ns > 0)),
      next_addr_(0),
      trace_(obs::current_trace()) {
  // Salted base address: secure and normal VMs get different physical
  // layouts, hence slightly different cache-set conflict patterns.
  const std::uint64_t salt = sim::hash_combine(
      sim::stable_hash(platform_->name()), secure ? 0x9e37u : 0x1234u);
  next_addr_ = 0x10000000ULL + (salt & 0x3FFFC0ULL);
  layout_state_ = salt;
}

void ExecutionContext::compute(double int_ops, double branches) {
  counters_.instructions += int_ops + branches;
  counters_.branches += branches;
  const double misses = branches * kBranchMissRate;
  counters_.branch_misses += misses;
  const double cycles = misses * kBranchMissCycles;
  const sim::Ns t = sim::compute_time_ns(int_ops, costs_.cpu) +
                    sim::cycles_to_ns(cycles, costs_.cpu.freq_ghz) *
                        costs_.cpu.sim_slowdown;
  counters_.t_compute_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kCompute, t);
}

void ExecutionContext::compute_fp(double fp_ops) {
  counters_.instructions += fp_ops;
  const sim::Ns t = sim::fp_time_ns(fp_ops, costs_.cpu);
  counters_.t_compute_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kCompute, t);
}

std::uint64_t ExecutionContext::alloc_region(std::uint64_t bytes,
                                             std::uint64_t align) {
  if (align == 0) align = 1;
  // Placement jitter: secure and normal VMs map regions at different
  // physical alignments (different key domains / RMP layout), so their
  // cache-set conflict patterns differ slightly — occasionally in the
  // secure VM's favour (the below-1.0 ratios of §IV-D).
  sim::SplitMix64 mix(layout_state_);
  layout_state_ = mix.next();
  next_addr_ += (layout_state_ & 0x3F) * 64;
  next_addr_ = (next_addr_ + align - 1) / align * align;
  const std::uint64_t base = next_addr_;
  next_addr_ += bytes;
  return base;
}

void ExecutionContext::mem_access(const sim::RangeAccess& a) {
  const sim::CacheCounts c = cache_.access_range(a);
  counters_.instructions += c.accesses;
  counters_.cache_references += c.accesses;
  counters_.cache_misses += c.dram_fills;
  const sim::Ns enc_ns = memenc_.record(c, costs_.mem);
  counters_.mem_protection_ns += enc_ns;
  const sim::Ns t = sim::mem_time_ns(c, costs_.mem, costs_.cpu);
  counters_.t_memory_ns += t;
  clock_.advance(t);
  // mem_time_ns already folds the protection overhead in, so the whole
  // access is one kMemory charge; the encryption share rides as a note.
  trace_charge(obs::Category::kMemory, t, c.accesses);
  if (trace_ && enc_ns > 0) trace_->note("mem.encryption", enc_ns);
}

void ExecutionContext::mem_read(std::uint64_t base, std::uint64_t bytes,
                                std::uint64_t stride) {
  mem_access({base, bytes, stride, /*write=*/false});
}

void ExecutionContext::mem_write(std::uint64_t base, std::uint64_t bytes,
                                 std::uint64_t stride) {
  mem_access({base, bytes, stride, /*write=*/true});
}

void ExecutionContext::mem_copy(std::uint64_t dst, std::uint64_t src,
                                std::uint64_t bytes) {
  mem_read(src, bytes, 64);
  mem_write(dst, bytes, 64);
}

void ExecutionContext::charge_exits(double exits, tee::ExitReason reason) {
  if (exits <= 0) return;
  counters_.add_exit(reason, exits);
  const sim::Ns t =
      exits * (costs_.exit.vmexit_ns + costs_.exit.secure_exit_extra_ns) *
      costs_.cpu.sim_slowdown;
  counters_.t_os_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kVmExit, t, exits);
  if (trace_)
    trace_->note(std::string("exit.") + std::string(tee::to_string(reason)),
                 t, exits);
}

void ExecutionContext::syscall(tee::ExitReason reason) {
  counters_.syscalls += 1;
  const sim::Ns t = costs_.exit.syscall_ns * costs_.cpu.sim_slowdown;
  counters_.t_os_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kOs, t);
  charge_exits(costs_.exit.exit_rate_per_syscall, reason);
}

void ExecutionContext::sleep(sim::Ns duration) {
  counters_.syscalls += 1;  // nanosleep
  counters_.t_other_ns += duration;
  clock_.advance(duration);
  trace_charge(obs::Category::kOther, duration);
  charge_exits(costs_.exit.timer_wake_exit, tee::ExitReason::kTimer);
}

void ExecutionContext::context_switch() {
  counters_.context_switches += 1;
  const sim::Ns t = costs_.exit.ctx_switch_ns * costs_.cpu.sim_slowdown;
  counters_.t_os_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kOs, t);
  charge_exits(costs_.exit.exit_rate_per_ctx_switch,
               tee::ExitReason::kInterrupt);
}

void ExecutionContext::page_fault(double faults) {
  if (faults <= 0) return;
  counters_.page_faults += faults;
  const sim::Ns t =
      faults *
      (costs_.exit.page_fault_ns + costs_.exit.page_fault_extra_ns) *
      costs_.cpu.sim_slowdown;
  counters_.t_os_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kOs, t, faults);
  if (costs_.exit.page_fault_extra_ns > 0) {
    counters_.add_exit(tee::ExitReason::kPageAccept, faults);
    if (trace_)
      trace_->note("exit.page_accept",
                   faults * costs_.exit.page_fault_extra_ns *
                       costs_.cpu.sim_slowdown,
                   faults);
  }
}

void ExecutionContext::spawn_process() {
  counters_.syscalls += 3;  // fork + execve + wait
  const sim::Ns t = costs_.exit.spawn_ns * costs_.cpu.sim_slowdown;
  counters_.t_os_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kOs, t);
  page_fault(24);  // demand-paging the fresh image
  charge_exits(2.0 * costs_.exit.exit_rate_per_ctx_switch,
               tee::ExitReason::kInterrupt);
}

void ExecutionContext::pipe_transfer(std::uint64_t bytes) {
  counters_.syscalls += 2;  // write + read
  const sim::Ns t = (2 * costs_.exit.syscall_ns +
                     static_cast<double>(bytes) * kPipeCopyNsPerByte) *
                    costs_.cpu.sim_slowdown;
  counters_.t_os_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kOs, t);
  charge_exits(2 * costs_.exit.exit_rate_per_syscall,
               tee::ExitReason::kSyscallAssist);
}

void ExecutionContext::block_read(std::uint64_t bytes) {
  counters_.syscalls += 1;
  counters_.io_bytes += static_cast<double>(bytes);
  const auto& io = costs_.io;
  const sim::Ns blk_ns =
      (io.blk_fixed_ns + static_cast<double>(bytes) * io.blk_byte_ns) *
      costs_.cpu.sim_slowdown;
  const sim::Ns bounce_ns =
      (io.bounce_fixed_ns + static_cast<double>(bytes) * io.bounce_byte_ns) *
      costs_.cpu.sim_slowdown;
  counters_.t_io_ns += blk_ns + bounce_ns;
  clock_.advance(blk_ns + bounce_ns);
  trace_charge(obs::Category::kIo, blk_ns);
  if (bounce_ns > 0) trace_charge(obs::Category::kBounce, bounce_ns);
  charge_exits(1.0, tee::ExitReason::kMmio);  // virtio doorbell
}

void ExecutionContext::block_write(std::uint64_t bytes) {
  // Same path as reads in the virtio model; the encrypt direction of the
  // bounce copy is already folded into bounce_byte_ns.
  block_read(bytes);
}

void ExecutionContext::block_flush() {
  counters_.syscalls += 1;
  const sim::Ns t = costs_.io.flush_ns * costs_.cpu.sim_slowdown;
  counters_.t_io_ns += t;
  clock_.advance(t);
  trace_charge(obs::Category::kIo, t);
  charge_exits(1.0, tee::ExitReason::kMmio);
}

void ExecutionContext::net_transfer(std::uint64_t bytes) {
  counters_.syscalls += 2;
  counters_.net_bytes += static_cast<double>(bytes);
  const auto& io = costs_.io;
  const sim::Ns net_ns =
      (io.net_rtt_ns + static_cast<double>(bytes) * io.net_byte_ns) *
      costs_.cpu.sim_slowdown;
  const sim::Ns bounce_ns =
      (io.bounce_fixed_ns + static_cast<double>(bytes) * io.bounce_byte_ns) *
      costs_.cpu.sim_slowdown;
  counters_.t_io_ns += net_ns + bounce_ns;
  clock_.advance(net_ns + bounce_ns);
  trace_charge(obs::Category::kIo, net_ns);
  if (bounce_ns > 0) trace_charge(obs::Category::kBounce, bounce_ns);
  charge_exits(2.0, tee::ExitReason::kMmio);
}

metrics::PerfCounters ExecutionContext::finish() {
  assert(!finished_ && "finish() called twice");
  finished_ = true;
  const double jitter = rng_.jitter(costs_.trial_jitter_sigma);
  counters_.wall_ns = clock_.now() * jitter;
  counters_.cycles = counters_.wall_ns * costs_.cpu.freq_ghz;
  return counters_;
}

}  // namespace confbench::vm

#include "vm/vfs.h"

#include <algorithm>
#include <sstream>

namespace confbench::vm {

namespace {
std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::istringstream is(path);
  std::string part;
  while (std::getline(is, part, '/')) {
    if (!part.empty() && part != ".") parts.push_back(part);
  }
  return parts;
}
}  // namespace

Vfs::Vfs(ExecutionContext& ctx, std::uint64_t dirty_threshold)
    : ctx_(ctx),
      dev_(ctx),
      dirty_threshold_(dirty_threshold),
      root_(std::make_unique<Node>()) {
  root_->dir = true;
}

Vfs::~Vfs() { sync_all(); }

Vfs::Node* Vfs::lookup(const std::string& path) const {
  Node* n = root_.get();
  for (const auto& part : split_path(path)) {
    if (!n->dir) return nullptr;
    auto it = n->children.find(part);
    if (it == n->children.end()) return nullptr;
    n = it->second.get();
  }
  return n;
}

Vfs::Node* Vfs::parent_of(const std::string& path, std::string* leaf) const {
  auto parts = split_path(path);
  if (parts.empty()) return nullptr;
  *leaf = parts.back();
  parts.pop_back();
  Node* n = root_.get();
  for (const auto& part : parts) {
    if (!n->dir) return nullptr;
    auto it = n->children.find(part);
    if (it == n->children.end()) return nullptr;
    n = it->second.get();
  }
  return n->dir ? n : nullptr;
}

bool Vfs::mkdir(const std::string& path) {
  ctx_.syscall();
  std::string leaf;
  Node* parent = parent_of(path, &leaf);
  if (!parent || parent->children.count(leaf)) return false;
  auto node = std::make_unique<Node>();
  node->dir = true;
  parent->children.emplace(leaf, std::move(node));
  return true;
}

bool Vfs::rmdir(const std::string& path) {
  ctx_.syscall();
  std::string leaf;
  Node* parent = parent_of(path, &leaf);
  if (!parent) return false;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end() || !it->second->dir ||
      !it->second->children.empty())
    return false;
  parent->children.erase(it);
  return true;
}

bool Vfs::create(const std::string& path) {
  ctx_.syscall();
  std::string leaf;
  Node* parent = parent_of(path, &leaf);
  if (!parent || parent->children.count(leaf)) return false;
  parent->children.emplace(leaf, std::make_unique<Node>());
  // Inode allocation touches a metadata block asynchronously; charge a
  // small journal write once in a while via the dirty mechanism instead.
  return true;
}

bool Vfs::unlink(const std::string& path) {
  ctx_.syscall();
  std::string leaf;
  Node* parent = parent_of(path, &leaf);
  if (!parent) return false;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end() || it->second->dir) return false;
  parent->children.erase(it);
  return true;
}

bool Vfs::exists(const std::string& path) const {
  ctx_.syscall();
  return lookup(path) != nullptr;
}

bool Vfs::is_dir(const std::string& path) const {
  const Node* n = lookup(path);
  return n && n->dir;
}

std::uint64_t Vfs::file_size(const std::string& path) const {
  ctx_.syscall();
  const Node* n = lookup(path);
  return (n && !n->dir) ? n->size : 0;
}

std::vector<std::string> Vfs::list_dir(const std::string& path) const {
  ctx_.syscall();
  std::vector<std::string> out;
  const Node* n = lookup(path);
  if (!n || !n->dir) return out;
  out.reserve(n->children.size());
  for (const auto& [name, _] : n->children) out.push_back(name);
  return out;
}

void Vfs::ensure_region(Node* n, std::uint64_t min_bytes) {
  if (n->region_cap >= min_bytes) return;
  // Grow geometrically so appends are amortised; only the newly mapped
  // pages fault in.
  std::uint64_t cap = std::max<std::uint64_t>(n->region_cap, 1 << 20);
  while (cap < min_bytes) cap *= 2;
  const std::uint64_t new_bytes = cap - n->region_cap;
  n->region = ctx_.alloc_region(cap, 4096);
  n->region_cap = cap;
  ctx_.page_fault(static_cast<double>(new_bytes) / 4096.0 * 0.25);
}

void Vfs::writeback(Node* n) {
  if (n->dirty == 0) return;
  dev_.write(n->dirty);
  n->dirty = 0;  // pages stay resident, now clean
}

std::uint64_t Vfs::write(const std::string& path, std::uint64_t bytes) {
  ctx_.syscall();
  Node* n = lookup(path);
  if (!n) {
    if (!create(path)) return 0;
    n = lookup(path);
  }
  if (!n || n->dir) return 0;
  ensure_region(n, n->size + bytes);
  // Data is copied into the page cache through the CPU caches.
  ctx_.mem_write(n->region + n->size, bytes, 64);
  n->size += bytes;
  n->resident = n->size;  // freshly written pages are resident
  n->dirty += bytes;
  if (n->dirty >= dirty_threshold_) writeback(n);
  return bytes;
}

std::uint64_t Vfs::read(const std::string& path, std::uint64_t offset,
                        std::uint64_t bytes) {
  ctx_.syscall();
  Node* n = lookup(path);
  if (!n || n->dir || offset >= n->size) return 0;
  const std::uint64_t len = std::min(bytes, n->size - offset);
  if (offset + len > n->resident) {
    // Page in the missing suffix from the device, with 128-KiB readahead
    // (sequential reads should not pay one device request per syscall).
    constexpr std::uint64_t kReadahead = 128 * 1024;
    const std::uint64_t missing = offset + len - n->resident;
    const std::uint64_t fetch =
        std::min(std::max(missing, kReadahead), n->size - n->resident);
    dev_.read(fetch);
    ensure_region(n, n->size);
    n->resident += fetch;
  }
  ctx_.mem_read(n->region + offset, len, 64);
  return len;
}

bool Vfs::truncate(const std::string& path) {
  ctx_.syscall();
  Node* n = lookup(path);
  if (!n || n->dir) return false;
  n->size = 0;
  n->resident = 0;
  n->dirty = 0;
  return true;
}

bool Vfs::fsync(const std::string& path) {
  ctx_.syscall();
  Node* n = lookup(path);
  if (!n || n->dir) return false;
  writeback(n);
  ctx_.block_flush();
  return true;
}

void Vfs::drop_caches() {
  ctx_.syscall();
  sync_tree(root_.get());
  // Mark everything non-resident.
  struct Walker {
    static void drop(Node* n) {
      if (!n->dir) n->resident = 0;
      for (auto& [_, c] : n->children) drop(c.get());
    }
  };
  Walker::drop(root_.get());
}

void Vfs::sync_tree(Node* n) {
  if (!n->dir) writeback(n);
  for (auto& [_, c] : n->children) sync_tree(c.get());
}

void Vfs::sync_all() { sync_tree(root_.get()); }

}  // namespace confbench::vm

// ExecutionContext: the charging API workloads run against.
//
// Every ConfBench workload performs its *real* computation in C++ and, as it
// goes, reports the operations it performed to an ExecutionContext. The
// context routes each event through the active platform's cost tables — the
// cache hierarchy + memory-encryption engine for memory traffic, the VM-exit
// model for syscalls/faults/context switches, the block/bounce-buffer model
// for I/O — and advances a deterministic virtual clock. Secure and normal
// VMs differ only in the cost table they carry, exactly like the paper's
// twin-VM setup (§IV-A).
//
// The address-space salt gives secure and normal VMs different physical
// layouts, so cache-set conflicts differ slightly between them; this is the
// mechanism behind the occasional below-1.0 ratios the paper traces back to
// cache-hit differences (§IV-D).
#pragma once

#include <cstdint>
#include <string>

#include "metrics/counters.h"
#include "obs/trace.h"
#include "sim/cache.h"
#include "sim/clock.h"
#include "sim/costs.h"
#include "sim/memenc.h"
#include "sim/rng.h"
#include "tee/platform.h"

namespace confbench::vm {

class ExecutionContext {
 public:
  ExecutionContext(tee::PlatformPtr platform, bool secure, std::uint64_t seed);

  // --- compute -------------------------------------------------------------
  /// Charges `int_ops` abstract ALU operations plus branch handling.
  void compute(double int_ops, double branches = 0.0);
  /// Charges floating-point operations.
  void compute_fp(double fp_ops);

  // --- memory --------------------------------------------------------------
  /// Reserves `bytes` of simulated address space (no time charge) and
  /// returns its base address. Layout is salted per-(platform, secure).
  std::uint64_t alloc_region(std::uint64_t bytes,
                             std::uint64_t align = 64);
  /// Strided read/write over [base, base+bytes) through the cache model.
  void mem_read(std::uint64_t base, std::uint64_t bytes,
                std::uint64_t stride = 64);
  void mem_write(std::uint64_t base, std::uint64_t bytes,
                 std::uint64_t stride = 64);
  void mem_access(const sim::RangeAccess& a);
  /// memcpy-style: read src, write dst.
  void mem_copy(std::uint64_t dst, std::uint64_t src, std::uint64_t bytes);

  // --- OS interaction --------------------------------------------------------
  /// One generic syscall (expected-value VM-exit charging).
  void syscall(tee::ExitReason reason = tee::ExitReason::kSyscallAssist);
  /// Timer sleep: programs the timer and wakes up — always exits.
  void sleep(sim::Ns duration);
  /// Scheduler context switch (pipe-based context switching etc.).
  void context_switch();
  /// Minor page faults; secure VMs add page-accept/RMP/GPT work.
  void page_fault(double faults = 1.0);
  /// fork+exec of a small process.
  void spawn_process();
  /// One write+read round trip through a pipe.
  void pipe_transfer(std::uint64_t bytes);

  // --- devices ---------------------------------------------------------------
  /// Block-device transfer; secure VMs route through bounce buffers when the
  /// platform requires them. Charged via the block model, counted in
  /// io_bytes. The page-cache logic lives in vm::Vfs, which calls these.
  void block_read(std::uint64_t bytes);
  void block_write(std::uint64_t bytes);
  /// Device write barrier (fsync): latency is dominated by the device-side
  /// flush, which secure and normal VMs pay alike.
  void block_flush();
  /// Network send+receive round trip of `bytes` payload.
  void net_transfer(std::uint64_t bytes);

  // --- direct access ---------------------------------------------------------
  void charge(sim::Ns t) {
    counters_.t_other_ns += t;
    clock_.advance(t);
    trace_charge(obs::Category::kOther, t);
  }

  [[nodiscard]] sim::Ns now() const { return clock_.now(); }
  [[nodiscard]] const sim::PlatformCosts& costs() const { return costs_; }
  [[nodiscard]] bool secure() const { return secure_; }
  [[nodiscard]] const tee::Platform& platform() const { return *platform_; }
  [[nodiscard]] metrics::PerfCounters& counters() { return counters_; }
  [[nodiscard]] const metrics::PerfCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] sim::CacheSim& cache() { return cache_; }

  /// Finalises the trial: applies the platform's lognormal trial jitter to
  /// the accumulated virtual time and fills derived counters (cycles,
  /// wall_ns). Call exactly once, after the workload returns.
  metrics::PerfCounters finish();

 private:
  void charge_exits(double exits, tee::ExitReason reason);

  /// Mirrors a virtual-clock charge onto the invocation's trace (captured
  /// from the ambient context at construction). One branch when untraced.
  void trace_charge(obs::Category c, sim::Ns t, double n = 1) {
    if (trace_) trace_->charge(c, t, n);
  }

  tee::PlatformPtr platform_;
  bool secure_;
  sim::PlatformCosts costs_;
  sim::VirtualClock clock_;
  sim::Rng rng_;
  sim::CacheSim cache_;
  sim::MemoryEncryptionEngine memenc_;
  metrics::PerfCounters counters_;
  std::uint64_t next_addr_;
  std::uint64_t layout_state_;  ///< per-VM allocation-placement stream
  obs::Trace* trace_;           ///< ambient trace at construction (or null)
  bool finished_ = false;
};

}  // namespace confbench::vm

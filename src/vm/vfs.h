// In-guest virtual filesystem with a page-cache model.
//
// Backs the iostress / filesystem FaaS workloads, the UnixBench file-copy
// tests and MiniDB's storage layer. Semantics follow POSIX closely enough
// for the workloads: a tree of directories and size-tracked files, reads
// served from the page cache when the data is resident, write-back caching
// with a dirty threshold and explicit fsync. Every operation charges a
// syscall; cache-missing reads and dirty write-backs go to the virtual
// block device, which on secure VMs rides the platform's bounce-buffer
// path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vm/block_device.h"
#include "vm/exec_context.h"

namespace confbench::vm {

class Vfs {
 public:
  /// `dirty_threshold` is the amount of dirty data that triggers background
  /// write-back (Linux's dirty ratio, scaled down to our workloads).
  explicit Vfs(ExecutionContext& ctx,
               std::uint64_t dirty_threshold = 4 * 1024 * 1024);
  ~Vfs();

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // All paths are absolute, '/'-separated.
  bool mkdir(const std::string& path);
  bool rmdir(const std::string& path);                 ///< must be empty
  bool create(const std::string& path);                ///< empty regular file
  bool unlink(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] bool is_dir(const std::string& path) const;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> list_dir(const std::string& path)
      const;

  /// Appends `bytes` to the file (creating it if absent); data lands in the
  /// page cache and is written back lazily. Returns bytes written, 0 on
  /// error.
  std::uint64_t write(const std::string& path, std::uint64_t bytes);
  /// Reads `bytes` starting at `offset`; short reads at EOF. Cache-missing
  /// spans hit the block device.
  std::uint64_t read(const std::string& path, std::uint64_t offset,
                     std::uint64_t bytes);
  /// Flushes the file's dirty pages to the device.
  bool fsync(const std::string& path);
  /// Truncates the file to zero length (WAL checkpointing).
  bool truncate(const std::string& path);
  /// Drops clean cached pages (echo 3 > drop_caches), forcing device reads.
  void drop_caches();
  /// Flushes everything (called by the destructor as well).
  void sync_all();

  [[nodiscard]] const BlockDevice& device() const { return dev_; }

 private:
  struct Node;
  using NodePtr = std::unique_ptr<Node>;
  struct Node {
    bool dir = false;
    std::uint64_t size = 0;
    std::uint64_t resident = 0;  ///< prefix of the file in the page cache
    std::uint64_t dirty = 0;     ///< dirty bytes awaiting write-back
    std::uint64_t region = 0;  ///< simulated address of the cache pages
    std::uint64_t region_cap = 0;
    std::map<std::string, NodePtr> children;
  };

  Node* lookup(const std::string& path) const;
  Node* parent_of(const std::string& path, std::string* leaf) const;
  void ensure_region(Node* n, std::uint64_t min_bytes);
  void writeback(Node* n);
  void sync_tree(Node* n);

  ExecutionContext& ctx_;
  BlockDevice dev_;
  std::uint64_t dirty_threshold_;
  NodePtr root_;
};

}  // namespace confbench::vm

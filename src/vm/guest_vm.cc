#include "vm/guest_vm.h"

#include <stdexcept>

namespace confbench::vm {

std::string_view to_string(UnitKind k) {
  switch (k) {
    case UnitKind::kVm:
      return "vm";
    case UnitKind::kContainer:
      return "container";
  }
  return "?";
}

std::string_view to_string(VmState s) {
  switch (s) {
    case VmState::kCreated:
      return "created";
    case VmState::kRunning:
      return "running";
    case VmState::kStopped:
      return "stopped";
    case VmState::kCrashed:
      return "crashed";
  }
  return "?";
}

GuestVm::GuestVm(VmConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.platform) throw std::invalid_argument("VM without a platform");
  if (cfg_.vcpus <= 0) throw std::invalid_argument("VM needs >= 1 vcpu");
}

sim::Ns GuestVm::boot() {
  if (state_ == VmState::kRunning) return boot_time_;
  const auto& c = cfg_.platform->costs(cfg_.secure);
  sim::Ns t;
  std::uint64_t eager_bytes;
  if (cfg_.unit == UnitKind::kContainer) {
    // Confidential containers boot a minimal pod micro-VM (Kata/CoCo):
    // much less firmware/kernel work and a smaller eagerly-accepted
    // footprint, at the price of higher per-request overheads elsewhere.
    t = 0.45 * sim::kSec * c.cpu.sim_slowdown;
    eager_bytes = 256ULL << 20;
  } else {
    // Firmware + kernel boot, scaled by the simulator slowdown.
    t = 2.2 * sim::kSec * c.cpu.sim_slowdown;
    eager_bytes = 1ULL << 30;
  }
  if (cfg_.secure) {
    // Initial measurement + private-page acceptance of guest RAM. Modern
    // guests accept lazily; charge the eagerly-accepted working set.
    const double pages = static_cast<double>(std::min<std::uint64_t>(
                             cfg_.ram_bytes, eager_bytes)) /
                         4096.0;
    t += pages * (c.exit.page_fault_extra_ns + 350.0) * c.cpu.sim_slowdown;
  }
  boot_time_ = t;
  state_ = VmState::kRunning;
  return boot_time_;
}

void GuestVm::stop() { state_ = VmState::kStopped; }

void GuestVm::crash() { state_ = VmState::kCrashed; }

InvocationOutcome GuestVm::run(const WorkloadFn& fn, std::uint64_t trial) {
  if (state_ != VmState::kRunning)
    throw std::logic_error("VM '" + cfg_.name + "' is not running");
  ++invocations_;
  const std::uint64_t seed = sim::hash_combine(
      sim::stable_hash(cfg_.name), sim::hash_combine(trial, 0xC0FFEEULL));
  ExecutionContext ctx(cfg_.platform, cfg_.secure, seed);
  InvocationOutcome out;
  out.output = fn(ctx);
  out.raw = ctx.finish();
  out.perf = out.raw;
  out.perf_from_pmu = cfg_.platform->has_perf_counters(cfg_.secure);
  if (!out.perf_from_pmu) {
    // Custom collector scripts see wall time, syscalls and I/O, but no PMU
    // events (§III-B: perf cannot run inside CCA realms).
    out.perf.instructions = 0;
    out.perf.cycles = 0;
    out.perf.cache_references = 0;
    out.perf.cache_misses = 0;
    out.perf.branches = 0;
    out.perf.branch_misses = 0;
  }
  return out;
}

}  // namespace confbench::vm

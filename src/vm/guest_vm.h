// Guest VM lifecycle and workload execution.
//
// Each TEE host in ConfBench runs two VMs — one confidential, one normal —
// with identical file locations, libraries and interpreters (§III-B). A
// GuestVm owns its platform cost tables, charges a boot latency (secure VMs
// pay extra for initial memory acceptance/measurement) and executes
// dispatched workloads, returning the perf counters ConfBench piggybacks on
// responses. On platforms whose confidential guests lack PMU access (CCA
// realms), the reported counters contain only what the custom collector
// scripts can observe (§III-B); the full simulation-truth counters remain
// available for debugging via InvocationOutcome::raw.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "metrics/counters.h"
#include "tee/platform.h"
#include "vm/exec_context.h"

namespace confbench::vm {

/// Execution-unit kinds (§V-§VI: ConfBench's design "can accommodate new
/// types of confidential virtual machines, including containers").
enum class UnitKind : std::uint8_t {
  kVm,         ///< full virtual machine (firmware + kernel boot)
  kContainer,  ///< confidential container (Kata/CoCo-style pod micro-VM)
};

std::string_view to_string(UnitKind k);

struct VmConfig {
  std::string name;
  tee::PlatformPtr platform;
  bool secure = false;
  UnitKind unit = UnitKind::kVm;
  int vcpus = 8;
  std::uint64_t ram_bytes = 16ULL << 30;
};

enum class VmState { kCreated, kRunning, kStopped, kCrashed };

std::string_view to_string(VmState s);

struct InvocationOutcome {
  std::string output;            ///< workload's textual result
  metrics::PerfCounters perf;    ///< what ConfBench reports to the user
  metrics::PerfCounters raw;     ///< full simulation-truth counters
  bool perf_from_pmu = true;     ///< false => custom-collector path (CCA)
};

class GuestVm {
 public:
  /// A workload body: performs its computation against the context and
  /// returns its textual output.
  using WorkloadFn = std::function<std::string(ExecutionContext&)>;

  explicit GuestVm(VmConfig cfg);

  /// Boots the VM; idempotent. Returns the virtual boot latency. Booting a
  /// crashed VM restarts it and pays the full boot cost again.
  sim::Ns boot();
  void stop();

  /// Hard-kills the VM (fault injection): it loses all in-flight work and
  /// must pay a full boot() — plus re-attestation, for confidential VMs —
  /// before it can run() again.
  void crash();

  /// Runs one workload invocation. `trial` seeds the trial-specific RNG so
  /// repeated invocations see independent (but reproducible) jitter.
  InvocationOutcome run(const WorkloadFn& fn, std::uint64_t trial = 0);

  [[nodiscard]] const VmConfig& config() const { return cfg_; }
  [[nodiscard]] VmState state() const { return state_; }
  [[nodiscard]] sim::Ns boot_time() const { return boot_time_; }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }

 private:
  VmConfig cfg_;
  VmState state_ = VmState::kCreated;
  sim::Ns boot_time_ = 0;
  std::uint64_t invocations_ = 0;
};

}  // namespace confbench::vm

// perf-stat-style counters.
//
// ConfBench invokes (simulated) `perf stat` around every dispatched workload
// and piggybacks the counters on the response (§III-B). Counters are doubles
// because sampled cache simulation produces fractional event counts.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.h"
#include "tee/platform.h"

namespace confbench::metrics {

struct PerfCounters {
  double instructions = 0;
  double cycles = 0;
  double cache_references = 0;
  double cache_misses = 0;     ///< LLC misses (DRAM fills)
  double branches = 0;
  double branch_misses = 0;
  double syscalls = 0;
  double vm_exits = 0;
  double page_faults = 0;
  double context_switches = 0;
  double io_bytes = 0;
  double net_bytes = 0;
  double alloc_bytes = 0;
  double gc_cycles = 0;              ///< collector runs in managed runtimes
  sim::Ns mem_protection_ns = 0;     ///< time inside the memory-crypto engine
  sim::Ns wall_ns = 0;               ///< virtual wall-clock of the run
  /// Where the (pre-jitter) time went — a built-in profile of the run.
  /// Invariant: the five categories sum to the unjittered wall clock.
  sim::Ns t_compute_ns = 0;  ///< ALU/FP work incl. interpreter dispatch
  sim::Ns t_memory_ns = 0;   ///< cache hierarchy + DRAM + protection
  sim::Ns t_os_ns = 0;       ///< syscalls, exits, faults, scheduling
  sim::Ns t_io_ns = 0;       ///< block/network device time
  sim::Ns t_other_ns = 0;    ///< direct charges (bootstrap, sleeps)
  /// Per-reason VM-exit breakdown (TEE-specific naming comes from the
  /// platform's exit_primitive()).
  std::array<double, static_cast<std::size_t>(tee::ExitReason::kCount)>
      exits_by_reason{};

  PerfCounters& operator+=(const PerfCounters& o);

  [[nodiscard]] double exit_count(tee::ExitReason r) const {
    return exits_by_reason[static_cast<std::size_t>(r)];
  }
  void add_exit(tee::ExitReason r, double n = 1.0) {
    exits_by_reason[static_cast<std::size_t>(r)] += n;
    vm_exits += n;
  }

  /// Renders the counters in the style of `perf stat` output.
  [[nodiscard]] std::string to_perf_stat_string() const;

  /// Serialises to a single-line key=value record (piggybacked in HTTP
  /// responses by the gateway).
  [[nodiscard]] std::string to_kv_string() const;

  /// Parses a record produced by to_kv_string(); returns false on garbage.
  static bool from_kv_string(const std::string& s, PerfCounters* out);
};

}  // namespace confbench::metrics

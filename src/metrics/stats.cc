#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace confbench::metrics {

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

Summary Summary::of(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  auto pct = [&](double p) {
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  };
  s.p25 = pct(25);
  s.median = pct(50);
  s.p75 = pct(75);
  s.p95 = pct(95);
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  if (xs.size() > 1) {
    double sq = 0;
    for (double x : xs) sq += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(xs.size() - 1));
  }
  return s;
}

double geometric_mean(const std::vector<double>& xs) {
  double log_sum = 0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x <= 0) continue;
    log_sum += std::log(x);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

double ratio_of_means(const std::vector<double>& numer,
                      const std::vector<double>& denom) {
  if (numer.empty() || denom.empty()) return 0.0;
  double a = 0, b = 0;
  for (double x : numer) a += x;
  for (double x : denom) b += x;
  a /= static_cast<double>(numer.size());
  b /= static_cast<double>(denom.size());
  return b == 0.0 ? 0.0 : a / b;
}

}  // namespace confbench::metrics

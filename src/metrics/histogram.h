// Fixed-bucket log-scale latency histogram.
//
// The cluster experiments (src/sched) record millions of per-request
// latencies; keeping raw samples would dominate memory and make quantile
// extraction O(n log n). This histogram uses a fixed logarithmic bucket
// layout — kBucketsPerDecade buckets per power of ten, spanning 1 ns to
// 10^kDecades ns — so any two instances are mergeable bucket-for-bucket and
// quantile estimates carry a bounded *relative* error of at most half a
// bucket width (≈ 10^(1/(2*kBucketsPerDecade)) - 1, under 3% with the
// default layout). Recording and merging are deterministic: no sampling,
// no dynamic rebucketing.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace confbench::metrics {

class LogHistogram {
 public:
  /// Bucket layout constants. Compile-time fixed so every LogHistogram is
  /// merge-compatible with every other.
  static constexpr int kBucketsPerDecade = 40;
  static constexpr int kDecades = 12;  ///< 1 ns .. 10^12 ns (~16.7 min)
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;

  LogHistogram() = default;

  /// Records one value (nanoseconds). Values below 1 ns clamp into the
  /// first bucket, values beyond the top of the range into the last.
  void record(double ns);

  /// Adds all of `other`'s samples into this histogram. Associative and
  /// commutative on bucket counts, counts, min and max.
  void merge(const LogHistogram& other);

  /// Quantile estimate, q in [0, 1]. Returns the geometric midpoint of the
  /// bucket containing the q-th sample, clamped to the exact observed
  /// [min, max]. Empty histogram returns 0.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double p999() const { return quantile(0.999); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  [[nodiscard]] std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Lower bound of bucket i in nanoseconds (10^(i/kBucketsPerDecade)).
  [[nodiscard]] static double bucket_lo(int i);
  [[nodiscard]] static double bucket_hi(int i) { return bucket_lo(i + 1); }
  /// Bucket index a value lands in (after clamping to the layout range).
  [[nodiscard]] static int bucket_index(double ns);

  /// One-line deterministic summary: count/mean/p50/p95/p99/p999/max in ms.
  [[nodiscard]] std::string summary() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace confbench::metrics

#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace confbench::metrics {

double LogHistogram::bucket_lo(int i) {
  return std::pow(10.0, static_cast<double>(i) / kBucketsPerDecade);
}

int LogHistogram::bucket_index(double ns) {
  if (!(ns > 1.0)) return 0;  // also catches NaN
  const int i = static_cast<int>(std::log10(ns) * kBucketsPerDecade);
  return std::clamp(i, 0, kBuckets - 1);
}

void LogHistogram::record(double ns) {
  ++buckets_[static_cast<std::size_t>(bucket_index(ns))];
  if (count_ == 0) {
    min_ = max_ = ns;
  } else {
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }
  ++count_;
  sum_ += ns;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (nearest-rank, 1-based).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Geometric midpoint halves the worst-case relative error.
      const double est = std::sqrt(bucket_lo(i) * bucket_hi(i));
      return std::clamp(est, min_, max_);
    }
  }
  return max_;
}

std::string LogHistogram::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
                "p999=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_), mean() / 1e6,
                p50() / 1e6, p95() / 1e6, p99() / 1e6, p999() / 1e6,
                max() / 1e6);
  return buf;
}

}  // namespace confbench::metrics

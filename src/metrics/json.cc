#include "metrics/json.h"

#include <cmath>
#include <cstdio>

namespace confbench::metrics {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already emitted "key":
  }
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"' + escape(k) + "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma_if_needed();
  out_ += '"' + escape(v) + '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (const int prec : {6, 9, 12, 15}) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out_ += shorter;
      return *this;
    }
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

bool JsonWriter::complete() const {
  return needs_comma_.size() == 1 && !after_key_ && !out_.empty();
}

}  // namespace confbench::metrics

// Descriptive statistics over trial samples.
//
// The paper reports mean ratios (Figs. 4, 6, 7), stacked percentiles
// min/p25/median/p95/max (Fig. 3) and box-and-whisker plots (Fig. 8); this
// module computes exactly those summaries.
#pragma once

#include <vector>

namespace confbench::metrics {

/// Percentile with linear interpolation between order statistics;
/// p in [0, 100]. Input need not be sorted. Empty input returns 0.
double percentile(std::vector<double> xs, double p);

struct Summary {
  std::size_t n = 0;
  double min = 0, p25 = 0, median = 0, p75 = 0, p95 = 0, max = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1)

  static Summary of(const std::vector<double>& xs);
};

/// Geometric mean; used by UnixBench's index computation. Non-positive
/// inputs are skipped (they would be ill-formed index scores).
double geometric_mean(const std::vector<double>& xs);

/// Ratio of means: mean(numer) / mean(denom); 0 if denom degenerates.
double ratio_of_means(const std::vector<double>& numer,
                      const std::vector<double>& denom);

}  // namespace confbench::metrics

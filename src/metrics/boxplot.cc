#include "metrics/boxplot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace confbench::metrics {

std::string render_boxplots(const std::vector<BoxSeries>& series, int width,
                            bool log_scale, const std::string& unit) {
  if (series.empty()) return "(no data)\n";

  auto xf = [&](double v) {
    return log_scale ? std::log10(std::max(v, 1e-12)) : v;
  };

  double lo = xf(series.front().summary.min);
  double hi = xf(series.front().summary.max);
  for (const auto& s : series) {
    lo = std::min(lo, xf(s.summary.min));
    hi = std::max(hi, xf(s.summary.max));
  }
  if (hi <= lo) hi = lo + 1.0;

  std::size_t label_w = 0;
  for (const auto& s : series) label_w = std::max(label_w, s.label.size());

  auto pos = [&](double v) {
    const double t = (xf(v) - lo) / (hi - lo);
    return static_cast<int>(t * (width - 1));
  };

  std::ostringstream os;
  for (const auto& s : series) {
    std::string line(static_cast<std::size_t>(width), ' ');
    const int a = pos(s.summary.min);
    const int q1 = pos(s.summary.p25);
    const int med = pos(s.summary.median);
    const int q3 = pos(s.summary.p75);
    const int b = pos(s.summary.max);
    for (int i = a; i <= b; ++i) line[static_cast<std::size_t>(i)] = '-';
    for (int i = q1; i <= q3; ++i) line[static_cast<std::size_t>(i)] = '=';
    line[static_cast<std::size_t>(a)] = '|';
    line[static_cast<std::size_t>(b)] = '|';
    line[static_cast<std::size_t>(med)] = 'M';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  med=%.3g%s", s.summary.median,
                  unit.c_str());
    os << s.label << std::string(label_w - s.label.size(), ' ') << " ["
       << line << "]" << buf << "\n";
  }
  char axis[128];
  if (log_scale) {
    std::snprintf(axis, sizeof(axis),
                  "%*s  axis: log10 from %.3g to %.3g %s\n",
                  static_cast<int>(label_w), "", std::pow(10.0, lo),
                  std::pow(10.0, hi), unit.c_str());
  } else {
    std::snprintf(axis, sizeof(axis), "%*s  axis: %.3g to %.3g %s\n",
                  static_cast<int>(label_w), "", lo, hi, unit.c_str());
  }
  os << axis;
  return os.str();
}

}  // namespace confbench::metrics

// Minimal ASCII table renderer for bench output.
#pragma once

#include <string>
#include <vector>

namespace confbench::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment; first column left-aligned, the rest
  /// right-aligned (numeric convention).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `prec` decimals.
  static std::string num(double v, int prec = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace confbench::metrics

// Minimal JSON writer for machine-readable results export.
//
// The paper ships its raw datasets alongside the tool; CSV covers the
// tabular data and this writer covers structured records (invocation
// results with nested perf counters). Emission only — ConfBench never needs
// to parse JSON.
#pragma once

#include <string>
#include <vector>

namespace confbench::metrics {

/// Streaming JSON value builder with correct string escaping and
/// deterministic number formatting (shortest round-trippable doubles).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Introduces a member inside an object; follow with a value call.
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }
  /// True when every opened object/array has been closed.
  [[nodiscard]] bool complete() const;

  static std::string escape(const std::string& s);

 private:
  void comma_if_needed();
  std::string out_;
  // Per-nesting-level "needs a comma before the next element" flags.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
};

}  // namespace confbench::metrics

#include "metrics/counters.h"

#include <cstdio>
#include <sstream>
#include <vector>

namespace confbench::metrics {

PerfCounters& PerfCounters::operator+=(const PerfCounters& o) {
  instructions += o.instructions;
  cycles += o.cycles;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  branches += o.branches;
  branch_misses += o.branch_misses;
  syscalls += o.syscalls;
  vm_exits += o.vm_exits;
  page_faults += o.page_faults;
  context_switches += o.context_switches;
  io_bytes += o.io_bytes;
  net_bytes += o.net_bytes;
  alloc_bytes += o.alloc_bytes;
  gc_cycles += o.gc_cycles;
  mem_protection_ns += o.mem_protection_ns;
  wall_ns += o.wall_ns;
  t_compute_ns += o.t_compute_ns;
  t_memory_ns += o.t_memory_ns;
  t_os_ns += o.t_os_ns;
  t_io_ns += o.t_io_ns;
  t_other_ns += o.t_other_ns;
  for (std::size_t i = 0; i < exits_by_reason.size(); ++i)
    exits_by_reason[i] += o.exits_by_reason[i];
  return *this;
}

namespace {
void line(std::ostringstream& os, double v, const char* label) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%18.0f      %s\n", v, label);
  os << buf;
}
}  // namespace

std::string PerfCounters::to_perf_stat_string() const {
  std::ostringstream os;
  os << " Performance counter stats (simulated):\n\n";
  line(os, instructions, "instructions");
  line(os, cycles, "cycles");
  line(os, cache_references, "cache-references");
  line(os, cache_misses, "cache-misses");
  line(os, branches, "branches");
  line(os, branch_misses, "branch-misses");
  line(os, syscalls, "raw_syscalls:sys_enter");
  line(os, context_switches, "context-switches");
  line(os, page_faults, "page-faults");
  line(os, vm_exits, "vm-exits");
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\n%18.6f seconds time elapsed\n",
                wall_ns / sim::kSec);
  os << buf;
  return os.str();
}

std::string PerfCounters::to_kv_string() const {
  std::ostringstream os;
  os.precision(17);
  os << "ins=" << instructions << ";cyc=" << cycles
     << ";cref=" << cache_references << ";cmiss=" << cache_misses
     << ";br=" << branches << ";brmiss=" << branch_misses
     << ";sys=" << syscalls << ";exits=" << vm_exits << ";pf=" << page_faults
     << ";cs=" << context_switches << ";io=" << io_bytes
     << ";net=" << net_bytes << ";alloc=" << alloc_bytes
     << ";gc=" << gc_cycles << ";prot_ns=" << mem_protection_ns
     << ";wall_ns=" << wall_ns << ";t_cpu=" << t_compute_ns
     << ";t_mem=" << t_memory_ns << ";t_os=" << t_os_ns
     << ";t_io=" << t_io_ns << ";t_other=" << t_other_ns;
  return os.str();
}

bool PerfCounters::from_kv_string(const std::string& s, PerfCounters* out) {
  PerfCounters c;
  std::istringstream is(s);
  std::string tok;
  int parsed = 0;
  while (std::getline(is, tok, ';')) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = tok.substr(0, eq);
    double val = 0;
    try {
      val = std::stod(tok.substr(eq + 1));
    } catch (...) {
      return false;
    }
    ++parsed;
    if (key == "ins") c.instructions = val;
    else if (key == "cyc") c.cycles = val;
    else if (key == "cref") c.cache_references = val;
    else if (key == "cmiss") c.cache_misses = val;
    else if (key == "br") c.branches = val;
    else if (key == "brmiss") c.branch_misses = val;
    else if (key == "sys") c.syscalls = val;
    else if (key == "exits") c.vm_exits = val;
    else if (key == "pf") c.page_faults = val;
    else if (key == "cs") c.context_switches = val;
    else if (key == "io") c.io_bytes = val;
    else if (key == "net") c.net_bytes = val;
    else if (key == "alloc") c.alloc_bytes = val;
    else if (key == "gc") c.gc_cycles = val;
    else if (key == "prot_ns") c.mem_protection_ns = val;
    else if (key == "wall_ns") c.wall_ns = val;
    else if (key == "t_cpu") c.t_compute_ns = val;
    else if (key == "t_mem") c.t_memory_ns = val;
    else if (key == "t_os") c.t_os_ns = val;
    else if (key == "t_io") c.t_io_ns = val;
    else if (key == "t_other") c.t_other_ns = val;
    else --parsed;  // unknown keys are ignored but do not count
  }
  if (parsed == 0) return false;
  *out = c;
  return true;
}

}  // namespace confbench::metrics

#include "metrics/csv.h"

#include <fstream>
#include <stdexcept>

namespace confbench::metrics {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : columns_(headers.size()) {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) buf_ += ',';
    buf_ += escape(headers[i]);
  }
  buf_ += '\n';
}

std::string CsvWriter::escape(const std::string& f) {
  if (f.find_first_of(",\"\n") == std::string::npos) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_)
    throw std::invalid_argument("CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) buf_ += ',';
    buf_ += escape(cells[i]);
  }
  buf_ += '\n';
}

std::string CsvWriter::str() const { return buf_; }

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << buf_;
  return static_cast<bool>(out);
}

}  // namespace confbench::metrics

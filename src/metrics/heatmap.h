// ASCII heatmap renderer for the FaaS overhead grids (Figs. 6 and 7).
//
// Rows are workloads, columns are languages, cells are secure/normal mean
// ratios. Like the paper's figures, the renderer maps "good" ratios (≈1) to
// dark tones and high overheads to light/red tones; in plain mode it uses
// shade characters instead of ANSI colour so output stays readable in logs.
#pragma once

#include <string>
#include <vector>

namespace confbench::metrics {

struct HeatmapOptions {
  bool ansi_color = false;  ///< default: log-friendly shading
  double lo = 0.9;          ///< ratio mapped to the darkest bucket
  double hi = 3.0;          ///< ratio mapped to the hottest bucket
};

class Heatmap {
 public:
  Heatmap(std::vector<std::string> row_labels,
          std::vector<std::string> col_labels);

  void set(std::size_t row, std::size_t col, double value);
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::string render(const HeatmapOptions& opt = {}) const;

  [[nodiscard]] std::size_t rows() const { return row_labels_.size(); }
  [[nodiscard]] std::size_t cols() const { return col_labels_.size(); }

 private:
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<double> cells_;
};

}  // namespace confbench::metrics

// CSV export for raw benchmark data (the paper ships its raw datasets).
#pragma once

#include <string>
#include <vector>

namespace confbench::metrics {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  /// RFC-4180-ish: quotes fields containing comma, quote or newline.
  [[nodiscard]] std::string str() const;

  /// Writes to `path`; returns false on I/O error.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& f);
  std::string buf_;
  std::size_t columns_;
};

}  // namespace confbench::metrics

#include "metrics/table.h"

#include <cstdio>
#include <sstream>

namespace confbench::metrics {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      if (c == 0) {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      } else {
        os << std::string(widths[c] - cell.size(), ' ') << cell;
      }
      os << (c + 1 == headers_.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace confbench::metrics

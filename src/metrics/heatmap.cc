#include "metrics/heatmap.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace confbench::metrics {

Heatmap::Heatmap(std::vector<std::string> row_labels,
                 std::vector<std::string> col_labels)
    : row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      cells_(row_labels_.size() * col_labels_.size(), 0.0) {}

void Heatmap::set(std::size_t row, std::size_t col, double value) {
  if (row >= rows() || col >= cols())
    throw std::out_of_range("Heatmap::set out of range");
  cells_[row * cols() + col] = value;
}

double Heatmap::at(std::size_t row, std::size_t col) const {
  if (row >= rows() || col >= cols())
    throw std::out_of_range("Heatmap::at out of range");
  return cells_[row * cols() + col];
}

namespace {
// 5 buckets from "ratio ~1, good" to "large overhead".
const char* kShade[] = {"  ", ". ", "o ", "O ", "# "};
const char* kAnsi[] = {"\x1b[48;5;17m", "\x1b[48;5;25m", "\x1b[48;5;68m",
                       "\x1b[48;5;180m", "\x1b[48;5;167m"};
}  // namespace

std::string Heatmap::render(const HeatmapOptions& opt) const {
  std::size_t label_w = 0;
  for (const auto& r : row_labels_) label_w = std::max(label_w, r.size());

  std::ostringstream os;
  const int cell_w = 7;
  os << std::string(label_w, ' ') << "  ";
  for (const auto& c : col_labels_) {
    std::string h = c.substr(0, cell_w - 1);
    os << h << std::string(cell_w - h.size(), ' ');
  }
  os << "\n";
  for (std::size_t r = 0; r < rows(); ++r) {
    os << row_labels_[r] << std::string(label_w - row_labels_[r].size(), ' ')
       << "  ";
    for (std::size_t c = 0; c < cols(); ++c) {
      const double v = at(r, c);
      const double t =
          std::clamp((v - opt.lo) / (opt.hi - opt.lo), 0.0, 0.999);
      const int bucket = static_cast<int>(t * 5.0);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%5.2f", v);
      if (opt.ansi_color) {
        os << kAnsi[bucket] << buf << "\x1b[0m  ";
      } else {
        os << buf << kShade[bucket];
      }
    }
    os << "\n";
  }
  os << "\nscale: '  ' <= " << opt.lo << "  '. ' 'o ' 'O '  '# ' >= " << opt.hi
     << "  (secure/normal time ratio; lower is better)\n";
  return os.str();
}

}  // namespace confbench::metrics

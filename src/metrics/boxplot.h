// ASCII box-and-whisker renderer (Fig. 8 style).
#pragma once

#include <string>
#include <vector>

#include "metrics/stats.h"

namespace confbench::metrics {

struct BoxSeries {
  std::string label;
  Summary summary;
};

/// Renders a group of box plots sharing one horizontal axis. `log_scale`
/// plots log10(value) positions, as in the paper's latency figures.
std::string render_boxplots(const std::vector<BoxSeries>& series,
                            int width = 72, bool log_scale = false,
                            const std::string& unit = "");

}  // namespace confbench::metrics

#include "net/router.h"

#include <sstream>

namespace confbench::net {

std::vector<std::string> Router::split(const std::string& path) {
  std::vector<std::string> out;
  std::istringstream is(path);
  std::string seg;
  while (std::getline(is, seg, '/')) {
    if (!seg.empty()) out.push_back(seg);
  }
  return out;
}

void Router::add(const std::string& method, const std::string& pattern,
                 Handler handler) {
  routes_.push_back({method, split(pattern), std::move(handler)});
}

bool Router::match(const Route& r, const std::vector<std::string>& segs,
                   PathParams* params) {
  if (r.segments.size() != segs.size()) return false;
  PathParams captured;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const std::string& pat = r.segments[i];
    if (!pat.empty() && pat[0] == ':') {
      captured[pat.substr(1)] = url_decode(segs[i]);
    } else if (pat != segs[i]) {
      return false;
    }
  }
  *params = std::move(captured);
  return true;
}

HttpResponse Router::dispatch(const HttpRequest& req) const {
  const auto segs = split(req.path);
  bool path_matched = false;
  for (const auto& r : routes_) {
    PathParams params;
    if (!match(r, segs, &params)) continue;
    path_matched = true;
    if (r.method != req.method) continue;
    return r.handler(req, params);
  }
  return HttpResponse::make(path_matched ? 405 : 404,
                            path_matched ? "method not allowed\n"
                                         : "no such route\n");
}

}  // namespace confbench::net

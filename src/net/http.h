// Minimal HTTP/1.1 message model, parser and serializer.
//
// The ConfBench gateway exposes a REST interface (§III-A); this module
// implements enough of HTTP/1.1 — request line, status line, headers,
// Content-Length framing, query strings — to drive it for real. The parser
// is strict about framing (tests feed it truncated and malformed inputs)
// and transport-agnostic: bytes in, message out.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace confbench::net {

/// Case-insensitive header map (HTTP header names are case-insensitive).
struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using Headers = std::map<std::string, std::string, CaseInsensitiveLess>;

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";      ///< path without the query string
  std::string query;           ///< raw query string (no leading '?')
  Headers headers;
  std::string body;

  /// Decoded query parameters (k=v&k2=v2, %XX unescaped).
  [[nodiscard]] std::map<std::string, std::string> query_params() const;
  [[nodiscard]] std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;

  static HttpResponse make(int status, std::string body,
                           std::string content_type = "text/plain");
};

/// Parses a complete request (returns nullopt on malformed or incomplete
/// input). `consumed` (optional) receives the number of bytes used, for
/// pipelined streams.
std::optional<HttpRequest> parse_request(const std::string& raw,
                                         std::size_t* consumed = nullptr);
std::optional<HttpResponse> parse_response(const std::string& raw,
                                           std::size_t* consumed = nullptr);

/// Percent-decoding for query values ("%2F" -> "/", "+" -> ' ').
std::string url_decode(const std::string& s);
std::string url_encode(const std::string& s);

std::string reason_for_status(int status);

}  // namespace confbench::net

#include "net/network.h"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.h"

namespace confbench::net {

Network::Network(double rtt_us, double per_kb_us, std::uint64_t seed)
    : rtt_us_(rtt_us), per_kb_us_(per_kb_us), rng_(seed) {}

std::string Network::key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

void Network::set_faults(const FaultConfig& f) {
  if (f.timeout_us < 0)
    throw std::invalid_argument("FaultConfig::timeout_us must be >= 0");
  faults_ = f;
  faults_.drop_rate = std::clamp(f.drop_rate, 0.0, 1.0);
  faults_.corrupt_rate = std::clamp(f.corrupt_rate, 0.0, 1.0);
}

void Network::set_partitioned(const std::string& host, bool partitioned) {
  if (partitioned)
    partitioned_.insert(host);
  else
    partitioned_.erase(host);
}

void Network::bind(const std::string& host, std::uint16_t port,
                   EndpointHandler handler) {
  const std::string k = key(host, port);
  if (endpoints_.count(k))
    throw std::invalid_argument("endpoint already bound: " + k);
  endpoints_[k] = std::move(handler);
}

void Network::unbind(const std::string& host, std::uint16_t port) {
  endpoints_.erase(key(host, port));
}

bool Network::bound(const std::string& host, std::uint16_t port) const {
  return endpoints_.count(key(host, port)) > 0;
}

HttpResponse Network::roundtrip(const std::string& host, std::uint16_t port,
                                const HttpRequest& req) {
  ++requests_;
  if (partitioned_.count(host)) {
    // Partitioned paths bypass the RNG entirely (see set_partitioned).
    ++faults_injected_;
    elapsed_ += faults_.timeout_us * sim::kUs;
    obs::charge(obs::Category::kNetwork, faults_.timeout_us * sim::kUs);
    return HttpResponse::make(504, "host unreachable (partitioned)\n");
  }
  const std::string wire = req.serialize();
  const auto it = endpoints_.find(key(host, port));
  if (it == endpoints_.end()) {
    elapsed_ += rtt_us_ * sim::kUs;  // connection attempt timeout path
    obs::charge(obs::Category::kNetwork, rtt_us_ * sim::kUs);
    return HttpResponse::make(502, "no endpoint at " + key(host, port) + "\n");
  }
  if (faults_.drop_rate > 0 && rng_.next_double() < faults_.drop_rate) {
    ++faults_injected_;
    elapsed_ += faults_.timeout_us * sim::kUs;
    obs::charge(obs::Category::kNetwork, faults_.timeout_us * sim::kUs);
    return HttpResponse::make(504, "request timed out\n");
  }
  // Re-parse on the "server" side: the wire format is load-bearing.
  const auto parsed = parse_request(wire);
  if (!parsed) return HttpResponse::make(400, "malformed request\n");
  const HttpResponse resp = it->second(*parsed);
  std::string resp_wire = resp.serialize();
  if (faults_.corrupt_rate > 0 && rng_.next_double() < faults_.corrupt_rate) {
    ++faults_injected_;
    // Mangle the status line so the damage is always detectable.
    resp_wire[0] ^= 0x7F;
  }
  const double kb =
      static_cast<double>(wire.size() + resp_wire.size()) / 1024.0;
  const sim::Ns wire_ns = (rtt_us_ + kb * per_kb_us_) * sim::kUs *
                          rng_.jitter(0.08);
  elapsed_ += wire_ns;
  obs::charge(obs::Category::kNetwork, wire_ns);
  const auto reparsed = parse_response(resp_wire);
  if (!reparsed) return HttpResponse::make(502, "malformed response\n");
  return *reparsed;
}

}  // namespace confbench::net

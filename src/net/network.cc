#include "net/network.h"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.h"

namespace confbench::net {

std::string_view to_string(LinkState s) {
  switch (s) {
    case LinkState::kUp:
      return "up";
    case LinkState::kDown:
      return "down";
    case LinkState::kSlow:
      return "slow";
  }
  return "?";
}

Network::Network(double rtt_us, double per_kb_us, std::uint64_t seed)
    : rtt_us_(rtt_us), per_kb_us_(per_kb_us), rng_(seed) {}

std::string Network::key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

void Network::set_faults(const FaultConfig& f) {
  if (f.timeout_us < 0)
    throw std::invalid_argument("FaultConfig::timeout_us must be >= 0");
  faults_ = f;
  faults_.drop_rate = std::clamp(f.drop_rate, 0.0, 1.0);
  faults_.corrupt_rate = std::clamp(f.corrupt_rate, 0.0, 1.0);
}

void Network::set_link(const std::string& src, const std::string& dst,
                       LinkState s, double latency_factor) {
  if (s == LinkState::kSlow && latency_factor < 1.0)
    throw std::invalid_argument("slow-link latency_factor must be >= 1");
  const auto k = std::make_pair(src, dst);
  if (s == LinkState::kUp)
    links_.erase(k);
  else
    links_[k] = {s, s == LinkState::kSlow ? latency_factor : 1.0};
}

std::pair<LinkState, double> Network::resolve_link(
    const std::string& src, const std::string& dst) const {
  // The partition overlay outranks every explicit rule: a partitioned
  // endpoint downs the path no matter what set_link installed for it, and
  // lifting the overlay re-exposes those rules unchanged.
  if (partitioned_.count(src) || partitioned_.count(dst))
    return {LinkState::kDown, 1.0};
  // Any matching kDown rule wins; otherwise kSlow rules combine by max
  // factor. Wildcards participate on either side.
  LinkState state = LinkState::kUp;
  double factor = 1.0;
  const std::pair<std::string, std::string> keys[] = {
      {src, dst}, {src, kAnyHost}, {kAnyHost, dst}, {kAnyHost, kAnyHost}};
  for (const auto& k : keys) {
    const auto it = links_.find(k);
    if (it == links_.end()) continue;
    if (it->second.first == LinkState::kDown) return {LinkState::kDown, 1.0};
    state = LinkState::kSlow;
    factor = std::max(factor, it->second.second);
  }
  return {state, factor};
}

LinkState Network::link_state(const std::string& src,
                              const std::string& dst) const {
  return resolve_link(src, dst).first;
}

double Network::link_factor(const std::string& src,
                            const std::string& dst) const {
  return resolve_link(src, dst).second;
}

std::pair<LinkState, double> Network::path_state(
    const std::vector<std::string>& hops) const {
  LinkState state = LinkState::kUp;
  double factor = 1.0;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const auto [s, f] = resolve_link(hops[i], hops[i + 1]);
    if (s == LinkState::kDown) return {LinkState::kDown, 1.0};
    if (s == LinkState::kSlow) {
      state = LinkState::kSlow;
      factor = std::max(factor, f);
    }
  }
  return {state, factor};
}

void Network::set_partitioned(const std::string& host, bool partitioned) {
  if (partitioned)
    partitioned_.insert(host);
  else
    partitioned_.erase(host);
}

bool Network::partitioned(const std::string& host) const {
  return partitioned_.count(host) > 0;
}

void Network::bind(const std::string& host, std::uint16_t port,
                   EndpointHandler handler) {
  const std::string k = key(host, port);
  if (endpoints_.count(k))
    throw std::invalid_argument("endpoint already bound: " + k);
  endpoints_[k] = std::move(handler);
}

void Network::unbind(const std::string& host, std::uint16_t port) {
  endpoints_.erase(key(host, port));
}

bool Network::bound(const std::string& host, std::uint16_t port) const {
  return endpoints_.count(key(host, port)) > 0;
}

HttpResponse Network::timeout_response(const char* why) {
  ++faults_injected_;
  elapsed_ += faults_.timeout_us * sim::kUs;
  obs::charge(obs::Category::kNetwork, faults_.timeout_us * sim::kUs);
  return HttpResponse::make(504, std::string(why) + "\n");
}

HttpResponse Network::roundtrip(const std::string& host, std::uint16_t port,
                                const HttpRequest& req) {
  return roundtrip_from(kClientHost, host, port, req);
}

HttpResponse Network::roundtrip_from(const std::string& src,
                                     const std::string& host,
                                     std::uint16_t port,
                                     const HttpRequest& req) {
  ++requests_;
  const auto [req_state, req_factor] = resolve_link(src, host);
  if (req_state == LinkState::kDown) {
    // Down request paths bypass the RNG entirely (see set_partitioned), so
    // lifting the link restores the exact unaffected random sequence.
    return timeout_response("host unreachable (link down)");
  }
  const std::string wire = req.serialize();
  const auto it = endpoints_.find(key(host, port));
  if (it == endpoints_.end()) {
    elapsed_ += rtt_us_ * sim::kUs;  // connection attempt timeout path
    obs::charge(obs::Category::kNetwork, rtt_us_ * sim::kUs);
    return HttpResponse::make(502, "no endpoint at " + key(host, port) + "\n");
  }
  if (faults_.drop_rate > 0 && rng_.next_double() < faults_.drop_rate) {
    ++faults_injected_;
    elapsed_ += faults_.timeout_us * sim::kUs;
    obs::charge(obs::Category::kNetwork, faults_.timeout_us * sim::kUs);
    return HttpResponse::make(504, "request timed out\n");
  }
  // Re-parse on the "server" side: the wire format is load-bearing.
  const auto parsed = parse_request(wire);
  if (!parsed) return HttpResponse::make(400, "malformed request\n");
  const HttpResponse resp = it->second(*parsed);
  const auto [resp_state, resp_factor] = resolve_link(host, src);
  if (resp_state == LinkState::kDown) {
    // Asymmetric partition: the server did the work but its answer never
    // arrives. No further RNG draws, same as the request-path drop.
    return timeout_response("response lost (return link down)");
  }
  std::string resp_wire = resp.serialize();
  if (faults_.corrupt_rate > 0 && rng_.next_double() < faults_.corrupt_rate) {
    ++faults_injected_;
    // Mangle the status line so the damage is always detectable.
    resp_wire[0] ^= 0x7F;
  }
  const double kb =
      static_cast<double>(wire.size() + resp_wire.size()) / 1024.0;
  // Gray failure: slow links inflate the wire time deterministically. The
  // jitter draw happens regardless of the factor, so slowing or restoring
  // a link never perturbs the fabric's random sequence.
  const double slow = std::max(req_factor, resp_factor);
  const sim::Ns wire_ns =
      (rtt_us_ + kb * per_kb_us_) * sim::kUs * rng_.jitter(0.08) * slow;
  elapsed_ += wire_ns;
  obs::charge(obs::Category::kNetwork, wire_ns);
  const auto reparsed = parse_response(resp_wire);
  if (!reparsed) return HttpResponse::make(502, "malformed response\n");
  return *reparsed;
}

}  // namespace confbench::net

// Tiny path router (Axum-flavoured, §III-B).
//
// Routes are method + path patterns; a pattern segment starting with ':'
// captures the corresponding request segment into the params map handed to
// the handler.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/http.h"

namespace confbench::net {

using PathParams = std::map<std::string, std::string>;
using Handler =
    std::function<HttpResponse(const HttpRequest&, const PathParams&)>;

class Router {
 public:
  void add(const std::string& method, const std::string& pattern,
           Handler handler);

  /// Dispatches a request; 404 if no pattern matches, 405 if the path
  /// matches but the method does not.
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& req) const;

  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;
    Handler handler;
  };
  static std::vector<std::string> split(const std::string& path);
  static bool match(const Route& r, const std::vector<std::string>& segs,
                    PathParams* params);

  std::vector<Route> routes_;
};

}  // namespace confbench::net

#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace confbench::net {

bool CaseInsensitiveLess::operator()(const std::string& a,
                                     const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(), [](char x, char y) {
        return std::tolower(static_cast<unsigned char>(x)) <
               std::tolower(static_cast<unsigned char>(y));
      });
}

std::string url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      const auto hex = [](char c) {
        if (c >= '0' && c <= '9') return c - '0';
        return std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string url_encode(const std::string& s) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out += static_cast<char>(c);
    } else {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
    }
  }
  return out;
}

std::map<std::string, std::string> HttpRequest::query_params() const {
  std::map<std::string, std::string> out;
  std::istringstream is(query);
  std::string pair;
  while (std::getline(is, pair, '&')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string::npos) {
      out[url_decode(pair)] = "";
    } else {
      out[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return out;
}

std::string reason_for_status(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpRequest::serialize() const {
  std::ostringstream os;
  os << method << ' ' << path;
  if (!query.empty()) os << '?' << query;
  os << " HTTP/1.1\r\n";
  Headers h = headers;
  h["Content-Length"] = std::to_string(body.size());
  for (const auto& [k, v] : h) os << k << ": " << v << "\r\n";
  os << "\r\n" << body;
  return os.str();
}

std::string HttpResponse::serialize() const {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' '
     << (reason.empty() ? reason_for_status(status) : reason) << "\r\n";
  Headers h = headers;
  h["Content-Length"] = std::to_string(body.size());
  for (const auto& [k, v] : h) os << k << ": " << v << "\r\n";
  os << "\r\n" << body;
  return os.str();
}

HttpResponse HttpResponse::make(int status, std::string body,
                                std::string content_type) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_for_status(status);
  r.headers["Content-Type"] = std::move(content_type);
  r.body = std::move(body);
  return r;
}

namespace {

/// Parses headers starting at `pos` (first header line); returns false on
/// malformed framing. On success `pos` points just past the blank line.
bool parse_headers(const std::string& raw, std::size_t& pos, Headers* out) {
  while (true) {
    const auto eol = raw.find("\r\n", pos);
    if (eol == std::string::npos) return false;
    if (eol == pos) {  // blank line: end of headers
      pos = eol + 2;
      return true;
    }
    const std::string line = raw.substr(pos, eol - pos);
    const auto colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    // Trim optional whitespace around the value.
    const auto b = value.find_first_not_of(" \t");
    const auto e = value.find_last_not_of(" \t");
    value = (b == std::string::npos) ? "" : value.substr(b, e - b + 1);
    (*out)[key] = value;
    pos = eol + 2;
  }
}

bool read_body(const std::string& raw, std::size_t& pos, const Headers& h,
               std::string* body) {
  auto it = h.find("Content-Length");
  std::size_t len = 0;
  if (it != h.end()) {
    try {
      len = static_cast<std::size_t>(std::stoull(it->second));
    } catch (...) {
      return false;
    }
  }
  if (pos + len > raw.size()) return false;  // incomplete
  *body = raw.substr(pos, len);
  pos += len;
  return true;
}

}  // namespace

std::optional<HttpRequest> parse_request(const std::string& raw,
                                         std::size_t* consumed) {
  const auto eol = raw.find("\r\n");
  if (eol == std::string::npos) return std::nullopt;
  const std::string line = raw.substr(0, eol);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return std::nullopt;
  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  if (req.method.empty() || target.empty()) return std::nullopt;
  const auto qmark = target.find('?');
  if (qmark == std::string::npos) {
    req.path = target;
  } else {
    req.path = target.substr(0, qmark);
    req.query = target.substr(qmark + 1);
  }
  std::size_t pos = eol + 2;
  if (!parse_headers(raw, pos, &req.headers)) return std::nullopt;
  if (!read_body(raw, pos, req.headers, &req.body)) return std::nullopt;
  if (consumed) *consumed = pos;
  return req;
}

std::optional<HttpResponse> parse_response(const std::string& raw,
                                           std::size_t* consumed) {
  const auto eol = raw.find("\r\n");
  if (eol == std::string::npos) return std::nullopt;
  const std::string line = raw.substr(0, eol);
  if (line.rfind("HTTP/1.", 0) != 0) return std::nullopt;
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return std::nullopt;
  const auto sp2 = line.find(' ', sp1 + 1);
  HttpResponse resp;
  try {
    resp.status = std::stoi(line.substr(
        sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1));
  } catch (...) {
    return std::nullopt;
  }
  if (resp.status < 100 || resp.status > 599) return std::nullopt;
  resp.reason = sp2 == std::string::npos ? "" : line.substr(sp2 + 1);
  std::size_t pos = eol + 2;
  if (!parse_headers(raw, pos, &resp.headers)) return std::nullopt;
  if (!read_body(raw, pos, resp.headers, &resp.body)) return std::nullopt;
  if (consumed) *consumed = pos;
  return resp;
}

}  // namespace confbench::net

// Deterministic in-process network fabric.
//
// Endpoints ("host:port") register request handlers; clients perform HTTP
// round trips through serialized bytes, so the wire format is exercised end
// to end. A host registering one handler per port is exactly the socat
// port-steering role of the prototype (§III-B): the gateway only rewrites
// the destination port to pick the confidential or the normal VM.
//
// The fabric keeps its own virtual latency accounting (gateway-side time is
// *not* part of the in-VM perf measurements, matching the paper's
// methodology of measuring inside the guest).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "net/http.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace confbench::net {

using EndpointHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Deterministic fault injection for resilience testing: a fraction of
/// round trips time out (drop) or deliver corrupted response bytes.
struct FaultConfig {
  double drop_rate = 0.0;     ///< P(request times out)
  double corrupt_rate = 0.0;  ///< P(response bytes corrupted in flight)
  double timeout_us = 2000.0; ///< client-side timeout charged on a drop
};

class Network {
 public:
  /// `seed` drives the fabric's deterministic RNG (latency jitter + fault
  /// draws); experiments use distinct seeds to decorrelate repetitions
  /// while staying reproducible.
  explicit Network(double rtt_us = 180.0, double per_kb_us = 0.8,
                   std::uint64_t seed = 0xBEEF5EEDULL);

  /// Installs (or clears, with a default-constructed config) fault
  /// injection. Faults are drawn from the network's deterministic RNG.
  /// Rates are clamped to [0, 1]; a negative timeout_us throws
  /// std::invalid_argument.
  void set_faults(const FaultConfig& f);
  [[nodiscard]] const FaultConfig& faults() const { return faults_; }
  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_injected_;
  }

  /// Marks a host (all its ports) unreachable / reachable again. Round
  /// trips to a partitioned host charge the fault timeout and return 504
  /// without consuming any RNG draws, so lifting the partition restores the
  /// exact unpartitioned random sequence.
  void set_partitioned(const std::string& host, bool partitioned);
  [[nodiscard]] bool partitioned(const std::string& host) const {
    return partitioned_.count(host) > 0;
  }

  /// Binds a handler to "host:port". Throws if already bound.
  void bind(const std::string& host, std::uint16_t port,
            EndpointHandler handler);
  void unbind(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool bound(const std::string& host, std::uint16_t port) const;

  /// Performs one HTTP round trip: serializes the request, delivers it to
  /// the endpoint, parses the response bytes. Unbound endpoints yield 502.
  HttpResponse roundtrip(const std::string& host, std::uint16_t port,
                         const HttpRequest& req);

  /// Virtual network time accumulated by this client (gateway-side).
  [[nodiscard]] sim::Ns elapsed() const { return elapsed_; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }

 private:
  static std::string key(const std::string& host, std::uint16_t port);

  std::map<std::string, EndpointHandler> endpoints_;
  std::set<std::string> partitioned_;
  double rtt_us_;
  double per_kb_us_;
  FaultConfig faults_;
  std::uint64_t faults_injected_ = 0;
  sim::Ns elapsed_ = 0;
  std::uint64_t requests_ = 0;
  sim::Rng rng_;
};

}  // namespace confbench::net

// Deterministic in-process network fabric.
//
// Endpoints ("host:port") register request handlers; clients perform HTTP
// round trips through serialized bytes, so the wire format is exercised end
// to end. A host registering one handler per port is exactly the socat
// port-steering role of the prototype (§III-B): the gateway only rewrites
// the destination port to pick the confidential or the normal VM.
//
// The fabric keeps its own virtual latency accounting (gateway-side time is
// *not* part of the in-VM perf measurements, matching the paper's
// methodology of measuring inside the guest).
//
// Failure topology is a *directed link* model: set_link(src, dst, state)
// controls the path from one host to another independently of the reverse
// path, which expresses asymmetric partitions (A reaches B, B cannot answer
// A), subset partitions (A sees B but not C) and gray failures — kSlow
// links deliver every byte but inflate latency by a deterministic factor.
// The wildcard host "*" matches any endpoint.
//
// Precedence (defined, not last-writer-wins): set_partitioned() is an
// *overlay*, not a pair of wildcard set_link rules. While a host is
// partitioned every path touching it resolves kDown regardless of any
// explicit set_link rule for the same (src, dst) pair; lifting the
// partition restores the explicit rules exactly as they were. Explicit
// rules never clobber the overlay and the overlay never erases explicit
// rules — the two layers are independent, so a LinkFaultDriver window and
// an operator partition on the same host compose instead of corrupting
// each other.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/http.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace confbench::net {

using EndpointHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Deterministic fault injection for resilience testing: a fraction of
/// round trips time out (drop) or deliver corrupted response bytes.
struct FaultConfig {
  double drop_rate = 0.0;     ///< P(request times out)
  double corrupt_rate = 0.0;  ///< P(response bytes corrupted in flight)
  double timeout_us = 2000.0; ///< client-side timeout charged on a drop
};

/// State of one directed link. kDown drops everything (the affected round
/// trip charges the fault timeout and consumes no RNG draws, preserving the
/// partition determinism guarantee); kSlow delivers with its latency
/// multiplied by `latency_factor` — packet loss free, which is what makes
/// it a *gray* failure rather than a crash-style one.
enum class LinkState : std::uint8_t { kUp, kDown, kSlow };

std::string_view to_string(LinkState s);

class Network {
 public:
  /// Wildcard host for set_link: matches any source/destination.
  static constexpr const char* kAnyHost = "*";
  /// Source identity used by the single-argument roundtrip() (the gateway
  /// client); link rules against it model client-side partitions.
  static constexpr const char* kClientHost = "client";

  /// `seed` drives the fabric's deterministic RNG (latency jitter + fault
  /// draws); experiments use distinct seeds to decorrelate repetitions
  /// while staying reproducible.
  explicit Network(double rtt_us = 180.0, double per_kb_us = 0.8,
                   std::uint64_t seed = 0xBEEF5EEDULL);

  /// Installs (or clears, with a default-constructed config) fault
  /// injection. Faults are drawn from the network's deterministic RNG.
  /// Rates are clamped to [0, 1]; a negative timeout_us throws
  /// std::invalid_argument.
  void set_faults(const FaultConfig& f);
  [[nodiscard]] const FaultConfig& faults() const { return faults_; }
  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_injected_;
  }

  /// Sets the state of the directed link src -> dst (either side may be
  /// kAnyHost). kUp removes the rule. For kSlow, `latency_factor` (>= 1)
  /// multiplies the wire latency of traffic over the link; it throws
  /// std::invalid_argument below 1. Resolution when several rules match a
  /// path: any kDown rule wins, then kSlow (factors of all matching slow
  /// rules combine by max), else the link is up.
  void set_link(const std::string& src, const std::string& dst, LinkState s,
                double latency_factor = 1.0);
  /// Effective state of src -> dst after wildcard resolution.
  [[nodiscard]] LinkState link_state(const std::string& src,
                                     const std::string& dst) const;
  /// Effective latency factor of src -> dst (1.0 unless kSlow).
  [[nodiscard]] double link_factor(const std::string& src,
                                   const std::string& dst) const;

  /// Combined state of a directed multi-hop path, hops listed front to
  /// back (e.g. {client, shard, replica} for a two-hop dispatch). Any down
  /// hop downs the path; otherwise the path is slow with the factor of the
  /// slowest hop (factors combine by max, matching resolve_link); an empty
  /// or single-host path is trivially up.
  [[nodiscard]] std::pair<LinkState, double> path_state(
      const std::vector<std::string>& hops) const;

  /// Marks a host (all its ports) unreachable / reachable again. This is a
  /// partition *overlay*: while set, every path touching the host resolves
  /// kDown — taking precedence over explicit set_link rules for the same
  /// pair — and clearing it restores those rules untouched (see the header
  /// comment for the precedence contract). Round trips to a partitioned
  /// host charge the fault timeout and return 504 without consuming any
  /// RNG draws, so lifting the partition restores the exact unpartitioned
  /// random sequence.
  void set_partitioned(const std::string& host, bool partitioned);
  /// True while the overlay from set_partitioned(host, true) is active
  /// (explicit set_link kDown rules do not count as a partition).
  [[nodiscard]] bool partitioned(const std::string& host) const;

  /// Binds a handler to "host:port". Throws if already bound.
  void bind(const std::string& host, std::uint16_t port,
            EndpointHandler handler);
  void unbind(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool bound(const std::string& host, std::uint16_t port) const;

  /// Performs one HTTP round trip from kClientHost: serializes the request,
  /// delivers it to the endpoint, parses the response bytes. Unbound
  /// endpoints yield 502.
  HttpResponse roundtrip(const std::string& host, std::uint16_t port,
                         const HttpRequest& req);

  /// Round trip with an explicit source identity, subject to the directed
  /// links src -> host (request path) and host -> src (response path). A
  /// down request path short-circuits before the handler runs; a down
  /// response path runs the handler (the server did the work) but the
  /// client still times out with 504 — the asymmetric-partition signature.
  HttpResponse roundtrip_from(const std::string& src, const std::string& host,
                              std::uint16_t port, const HttpRequest& req);

  /// Virtual network time accumulated by this client (gateway-side).
  [[nodiscard]] sim::Ns elapsed() const { return elapsed_; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }

 private:
  static std::string key(const std::string& host, std::uint16_t port);
  /// (state, combined latency factor) of the directed path src -> dst.
  [[nodiscard]] std::pair<LinkState, double> resolve_link(
      const std::string& src, const std::string& dst) const;
  HttpResponse timeout_response(const char* why);

  std::map<std::string, EndpointHandler> endpoints_;
  /// Directed link rules, keyed (src, dst); kUp rules are never stored.
  std::map<std::pair<std::string, std::string>, std::pair<LinkState, double>>
      links_;
  /// Hosts under a set_partitioned overlay (takes precedence over links_).
  std::set<std::string> partitioned_;
  double rtt_us_;
  double per_kb_us_;
  FaultConfig faults_;
  std::uint64_t faults_injected_ = 0;
  sim::Ns elapsed_ = 0;
  std::uint64_t requests_ = 0;
  sim::Rng rng_;
};

}  // namespace confbench::net

// Language runtime profiles.
//
// The paper runs every FaaS function in 7 languages (§IV-A) and observes
// that heavier managed runtimes amplify TEE overheads (§IV-D). A profile
// captures the runtime traits that *mechanistically* produce that effect
// when run through the simulation:
//
//  - op_expansion / jit: interpreter dispatch multiplies executed
//    instructions (hits both secure and normal VMs equally);
//  - box_bytes_per_op + gc nursery: allocation and collector traffic adds
//    DRAM transfers, which secure VMs pay memory-encryption surcharges on —
//    this is what differentiates the *ratio* per language;
//  - mem_inflation: boxed objects and pointer indirection blow up the
//    working set, adding cache misses;
//  - syscall_amplification: buffered I/O layers issue extra syscalls,
//    adding VM exits on the secure side.
#pragma once

#include <string>
#include <vector>

#include "tee/platform.h"

namespace confbench::rt {

struct RuntimeProfile {
  std::string name;

  /// Interpreter versions deployed per testbed (from §IV-A), reported in
  /// results metadata.
  std::string version_tdx;
  std::string version_snp;
  std::string version_cca;

  /// Runtime bootstrap latency (ns); per §IV-D this is *excluded* from the
  /// reported function timing but the launcher still models it.
  double bootstrap_ns = 0;

  /// Machine ops executed per abstract workload op (interpreter dispatch).
  double op_expansion = 1.0;

  /// JIT runtimes start at op_expansion and drop to jit_expansion after
  /// jit_warmup_ops abstract ops.
  bool jit = false;
  double jit_expansion = 1.0;
  double jit_warmup_ops = 0;

  /// Bytes of boxing/allocation traffic per abstract op.
  double box_bytes_per_op = 0;

  /// Minor page faults per 4-KiB page of allocated memory: how often the
  /// allocator touches fresh (mmap'd) pages instead of recycling arenas.
  /// Secure VMs pay page-accept/RMP/GPT costs on these (the mechanism
  /// behind heavier runtimes showing larger TEE ratios, §IV-B).
  double alloc_fault_rate = 0.0;

  /// Nursery size; exceeding it triggers a collection.
  double gc_nursery_bytes = 0;

  /// Fraction of heap that survives a collection (copied/ traversed).
  double gc_survivor_fraction = 0.25;

  /// Working-set inflation for data accessed through the runtime.
  double mem_inflation = 1.0;

  /// Extra syscalls issued by runtime I/O layers per workload syscall.
  double syscall_amplification = 1.0;

  /// Resolves the version string for a platform kind.
  [[nodiscard]] const std::string& version_for(tee::TeeKind k) const;
};

/// The 7 built-in profiles, in the paper's order:
/// python, node, ruby, lua, luajit, go, wasm.
const std::vector<RuntimeProfile>& builtin_profiles();

/// Lookup by name; nullptr if unknown.
const RuntimeProfile* find_profile(const std::string& name);

}  // namespace confbench::rt

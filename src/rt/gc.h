// Mark-sweep collector model.
//
// When the allocation window exceeds the profile's nursery size, the
// collector traverses the live heap (reads through the cache hierarchy,
// with a pointer-chasing stride that defeats prefetching) and copies
// survivors (writes). On secure VMs this traffic pays the platform's
// memory-encryption surcharge — the mechanism behind heavier runtimes
// showing larger TEE overheads (§IV-B, §IV-D).
#pragma once

#include "rt/heap.h"
#include "rt/profile.h"

namespace confbench::rt {

class MarkSweepGc {
 public:
  MarkSweepGc(SimHeap& heap, const RuntimeProfile& profile)
      : heap_(heap), profile_(profile) {}

  /// Runs a collection if the allocation window exceeded the nursery.
  /// Returns true if a collection ran.
  bool maybe_collect();

  /// Unconditional collection.
  void collect();

  [[nodiscard]] std::uint64_t collections() const { return collections_; }

 private:
  SimHeap& heap_;
  const RuntimeProfile& profile_;
  std::uint64_t collections_ = 0;
};

}  // namespace confbench::rt

// Simulated managed heap.
//
// Allocations carve simulated address space out of contiguous segments and
// charge the header/initialisation traffic through the cache model. The
// heap tracks live bytes so the collector (rt/gc.h) knows what to traverse.
#pragma once

#include <cstdint>

#include "vm/exec_context.h"

namespace confbench::rt {

class SimHeap {
 public:
  /// `segment_bytes` is the granularity at which address space is reserved.
  explicit SimHeap(vm::ExecutionContext& ctx,
                   std::uint64_t segment_bytes = 8ULL << 20);

  /// Allocates `bytes`, charging header-write traffic; returns the address.
  std::uint64_t allocate(std::uint64_t bytes);

  /// Marks `bytes` as dead (unreachable); they are reclaimed at the next
  /// collection.
  void release(std::uint64_t bytes);

  /// Called by the collector after a sweep: compacts accounting.
  void reclaim_garbage(std::uint64_t live_after);

  [[nodiscard]] std::uint64_t live_bytes() const { return live_; }
  [[nodiscard]] std::uint64_t allocated_since_gc() const {
    return since_gc_;
  }
  void reset_allocation_window() { since_gc_ = 0; }

  /// Base address of the most recently active segment (collector walks
  /// from here).
  [[nodiscard]] std::uint64_t segment_base() const { return seg_base_; }
  [[nodiscard]] vm::ExecutionContext& ctx() { return ctx_; }

 private:
  void new_segment();

  vm::ExecutionContext& ctx_;
  std::uint64_t segment_bytes_;
  std::uint64_t seg_base_ = 0;
  std::uint64_t seg_used_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t since_gc_ = 0;
};

}  // namespace confbench::rt

#include "rt/runtime.h"

#include <algorithm>

namespace confbench::rt {

RtContext::RtContext(vm::ExecutionContext& ctx, const RuntimeProfile& profile)
    : ctx_(ctx),
      profile_(profile),
      heap_(ctx),
      gc_(heap_, profile),
      vfs_(std::make_unique<vm::Vfs>(ctx)) {}

RtContext::~RtContext() = default;

double RtContext::effective_expansion() const {
  if (!profile_.jit) return profile_.op_expansion;
  if (ops_done_ >= profile_.jit_warmup_ops) return profile_.jit_expansion;
  // Linear ramp from interpreter to JIT'd code as hot paths compile.
  const double t = profile_.jit_warmup_ops > 0
                       ? ops_done_ / profile_.jit_warmup_ops
                       : 1.0;
  return profile_.op_expansion +
         (profile_.jit_expansion - profile_.op_expansion) * t;
}

void RtContext::accrue_boxing(double ops) {
  pending_box_bytes_ += ops * profile_.box_bytes_per_op;
  // Materialise boxing traffic in allocator-chunk granularity to bound the
  // number of model calls.
  constexpr double kChunk = 16 * 1024;
  while (pending_box_bytes_ >= kChunk) {
    heap_.allocate(static_cast<std::uint64_t>(kChunk));
    ctx_.page_fault(kChunk / 4096.0 * profile_.alloc_fault_rate);
    pending_box_bytes_ -= kChunk;
    gc_.maybe_collect();
  }
}

void RtContext::op(double n, double branches) {
  const double expansion = effective_expansion();
  ctx_.compute(n * expansion, branches * std::min(expansion, 4.0));
  ops_done_ += n;
  accrue_boxing(n);
}

void RtContext::fop(double n) {
  // FP goes through the same dispatch but unboxes to machine floats; charge
  // half the dispatch expansion on top of the raw FLOPs.
  const double expansion = effective_expansion();
  ctx_.compute_fp(n);
  ctx_.compute(n * expansion * 0.5, 0);
  ops_done_ += n;
  accrue_boxing(n * 0.5);
}

std::uint64_t RtContext::alloc(std::uint64_t bytes) {
  const auto inflated = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * profile_.mem_inflation);
  const std::uint64_t addr = heap_.allocate(std::max<std::uint64_t>(
      inflated, 16));
  ctx_.page_fault(static_cast<double>(inflated) / 4096.0 *
                  profile_.alloc_fault_rate);
  gc_.maybe_collect();
  return addr;
}

void RtContext::release(std::uint64_t bytes) {
  heap_.release(static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                           profile_.mem_inflation));
}

void RtContext::read(std::uint64_t addr, std::uint64_t bytes,
                     std::uint64_t stride) {
  const auto inflated = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * profile_.mem_inflation);
  ctx_.mem_read(addr, inflated, stride);
  // Boxed representations add scattered header touches off the main range.
  if (profile_.mem_inflation > 1.2) {
    ctx_.mem_read(heap_.segment_base(),
                  static_cast<std::uint64_t>(
                      static_cast<double>(bytes) *
                      (profile_.mem_inflation - 1.0) * 0.4),
                  128);
  }
}

void RtContext::write(std::uint64_t addr, std::uint64_t bytes,
                      std::uint64_t stride) {
  const auto inflated = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * profile_.mem_inflation);
  ctx_.mem_write(addr, inflated, stride);
}

void RtContext::print(const std::string& line) {
  // Format + copy into the runtime's stdio buffer.
  op(static_cast<double>(line.size()) * 0.6, 4);
  log_bytes_ += line.size() + 1;
  if (++buffered_log_lines_ >= kLogFlushLines) {
    buffered_log_lines_ = 0;
    syscall();  // write(2) on the console fd
    // Console output travels through a pty/log pipe to the host side.
    ctx_.pipe_transfer(log_bytes_);
    ctx_.mem_write(ctx_.alloc_region(log_bytes_, 64), log_bytes_, 64);
    log_bytes_ = 0;
  }
}

void RtContext::syscall() {
  ctx_.syscall();
  // Runtime I/O layers (buffered file objects, event loops) issue extra
  // syscalls; charge the fractional surplus.
  const double extra = profile_.syscall_amplification - 1.0;
  if (extra > 0) {
    ctx_.counters().syscalls += extra;
    ctx_.charge(extra * ctx_.costs().exit.syscall_ns *
                ctx_.costs().cpu.sim_slowdown);
    const double exits = extra * ctx_.costs().exit.exit_rate_per_syscall;
    if (exits > 0) {
      ctx_.counters().add_exit(tee::ExitReason::kSyscallAssist, exits);
      ctx_.charge(exits *
                  (ctx_.costs().exit.vmexit_ns +
                   ctx_.costs().exit.secure_exit_extra_ns) *
                  ctx_.costs().cpu.sim_slowdown);
    }
  }
}

}  // namespace confbench::rt

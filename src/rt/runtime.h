// RtContext: the environment a FaaS function body executes in.
//
// Workloads are written once against this API and run under any language
// profile, mirroring how the paper ports each function across languages
// while "maintaining as much as possible the original logic" (§IV-B).
// Abstract ops are expanded by the interpreter/JIT model; allocations flow
// through the managed heap and may trigger collections; data accesses are
// inflated by the boxing model; I/O goes through the guest VFS with the
// profile's syscall amplification.
#pragma once

#include <memory>
#include <string>

#include "rt/gc.h"
#include "rt/heap.h"
#include "rt/profile.h"
#include "vm/exec_context.h"
#include "vm/vfs.h"

namespace confbench::rt {

class RtContext {
 public:
  RtContext(vm::ExecutionContext& ctx, const RuntimeProfile& profile);
  ~RtContext();

  RtContext(const RtContext&) = delete;
  RtContext& operator=(const RtContext&) = delete;

  /// `n` abstract integer ops (+ branches). Expanded by the dispatch model;
  /// boxing traffic accrues per op.
  void op(double n, double branches = 0.0);
  /// Abstract floating-point ops.
  void fop(double n);

  /// Managed allocation; returns a simulated address.
  std::uint64_t alloc(std::uint64_t bytes);
  /// Releases (for runtimes with manual/arena storage semantics).
  void release(std::uint64_t bytes);

  /// Data accesses through runtime representations (inflated working set).
  void read(std::uint64_t addr, std::uint64_t bytes, std::uint64_t stride = 64);
  void write(std::uint64_t addr, std::uint64_t bytes,
             std::uint64_t stride = 64);

  /// Console logging (the `logging` workload): buffered, flushed to the log
  /// file every kLogFlushLines lines.
  void print(const std::string& line);

  /// Runtime-level syscall (amplified by the profile's I/O layers).
  void syscall();

  void sleep(sim::Ns d) { ctx_.sleep(d); }

  /// Guest filesystem (shared launcher conventions: same paths in every VM,
  /// §III-B).
  [[nodiscard]] vm::Vfs& fs() { return *vfs_; }

  [[nodiscard]] vm::ExecutionContext& raw() { return ctx_; }
  [[nodiscard]] sim::Rng& rng() { return ctx_.rng(); }
  [[nodiscard]] const RuntimeProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t gc_collections() const {
    return gc_.collections();
  }

 private:
  static constexpr int kLogFlushLines = 16;

  [[nodiscard]] double effective_expansion() const;
  void accrue_boxing(double ops);

  vm::ExecutionContext& ctx_;
  const RuntimeProfile& profile_;
  SimHeap heap_;
  MarkSweepGc gc_;
  std::unique_ptr<vm::Vfs> vfs_;
  double ops_done_ = 0;
  double pending_box_bytes_ = 0;
  int buffered_log_lines_ = 0;
  std::uint64_t log_bytes_ = 0;
};

}  // namespace confbench::rt

#include "rt/profile.h"

#include "sim/time.h"

namespace confbench::rt {

using sim::kMs;

const std::string& RuntimeProfile::version_for(tee::TeeKind k) const {
  switch (k) {
    case tee::TeeKind::kTdx:
      return version_tdx;
    case tee::TeeKind::kSevSnp:
      return version_snp;
    case tee::TeeKind::kCca:
      return version_cca;
    case tee::TeeKind::kNone:
      break;
  }
  return version_tdx;
}

const std::vector<RuntimeProfile>& builtin_profiles() {
  static const std::vector<RuntimeProfile> kProfiles = [] {
    std::vector<RuntimeProfile> v;

    RuntimeProfile python;
    python.name = "python";
    python.version_tdx = "3.12.3";
    python.version_snp = "3.10.12";
    python.version_cca = "3.11.8";
    python.bootstrap_ns = 28 * kMs;
    python.op_expansion = 28;
    python.box_bytes_per_op = 14;     // PyObject headers, refcount churn
    python.alloc_fault_rate = 0.030;  // pymalloc arena churn
    python.gc_nursery_bytes = 24e6;
    python.gc_survivor_fraction = 0.35;
    python.mem_inflation = 3.4;
    python.syscall_amplification = 1.35;
    v.push_back(python);

    RuntimeProfile node;
    node.name = "node";
    node.version_tdx = "22.2.0";
    node.version_snp = "22.2.0";
    node.version_cca = "20.12.2";
    node.bootstrap_ns = 52 * kMs;
    node.op_expansion = 20;           // ignition interpreter pre-JIT
    node.jit = true;
    node.jit_expansion = 2.1;         // turbofan
    node.jit_warmup_ops = 2.5e6;
    node.box_bytes_per_op = 9;        // V8 small objects + hidden classes
    node.alloc_fault_rate = 0.024;    // new-space growth
    node.gc_nursery_bytes = 32e6;
    node.gc_survivor_fraction = 0.3;
    node.mem_inflation = 2.2;
    node.syscall_amplification = 1.25;
    v.push_back(node);

    RuntimeProfile ruby;
    ruby.name = "ruby";
    ruby.version_tdx = "3.2";
    ruby.version_snp = "3.0";
    ruby.version_cca = "3.3";
    ruby.bootstrap_ns = 21 * kMs;
    ruby.op_expansion = 31;
    ruby.box_bytes_per_op = 12;
    ruby.alloc_fault_rate = 0.028;
    ruby.gc_nursery_bytes = 18e6;
    ruby.gc_survivor_fraction = 0.35;
    ruby.mem_inflation = 3.0;
    ruby.syscall_amplification = 1.3;
    v.push_back(ruby);

    RuntimeProfile lua;
    lua.name = "lua";
    lua.version_tdx = "5.4.6";
    lua.version_snp = "5.4.6";
    lua.version_cca = "5.4.6";
    lua.bootstrap_ns = 1.1 * kMs;
    lua.op_expansion = 13;
    lua.box_bytes_per_op = 2.5;       // TValue slots, small tables
    lua.alloc_fault_rate = 0.016;
    lua.gc_nursery_bytes = 4e6;
    lua.gc_survivor_fraction = 0.2;
    lua.mem_inflation = 1.7;
    lua.syscall_amplification = 1.0;
    v.push_back(lua);

    RuntimeProfile luajit;
    luajit.name = "luajit";
    luajit.version_tdx = "2.1";
    luajit.version_snp = "2.1";
    luajit.version_cca = "2.1";
    luajit.bootstrap_ns = 1.4 * kMs;
    luajit.op_expansion = 7;
    luajit.jit = true;
    luajit.jit_expansion = 1.5;
    luajit.jit_warmup_ops = 0.8e6;
    luajit.box_bytes_per_op = 1.6;
    luajit.alloc_fault_rate = 0.010;
    luajit.gc_nursery_bytes = 6e6;
    luajit.gc_survivor_fraction = 0.2;
    luajit.mem_inflation = 1.25;
    luajit.syscall_amplification = 1.0;
    v.push_back(luajit);

    RuntimeProfile go;
    go.name = "go";
    go.version_tdx = "1.20.3";
    go.version_snp = "1.20.3";
    go.version_cca = "1.20.3";
    go.bootstrap_ns = 2.3 * kMs;
    go.op_expansion = 1.15;           // AOT compiled
    go.box_bytes_per_op = 1.1;        // escape-analysed heap traffic
    go.alloc_fault_rate = 0.004;      // spans recycled by the runtime
    go.gc_nursery_bytes = 16e6;
    go.gc_survivor_fraction = 0.15;   // concurrent mark-sweep, low copy
    go.mem_inflation = 1.1;
    go.syscall_amplification = 1.05;
    v.push_back(go);

    RuntimeProfile wasm;
    wasm.name = "wasm";
    wasm.version_tdx = "wasmi-0.32";
    wasm.version_snp = "wasmi-0.32";
    wasm.version_cca = "wasmi-0.32";
    wasm.bootstrap_ns = 3.1 * kMs;   // module validation + instantiation
    wasm.op_expansion = 8;            // wasmi's tail-dispatch interpreter
    wasm.box_bytes_per_op = 0.4;      // linear memory, no boxing
    wasm.alloc_fault_rate = 0.002;    // linear memory grows monotonically
    wasm.gc_nursery_bytes = 0;        // no collector
    wasm.mem_inflation = 1.0;
    wasm.syscall_amplification = 1.0;
    v.push_back(wasm);

    return v;
  }();
  return kProfiles;
}

const RuntimeProfile* find_profile(const std::string& name) {
  for (const auto& p : builtin_profiles()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace confbench::rt

#include "rt/gc.h"

#include <algorithm>

#include "obs/trace.h"

namespace confbench::rt {

bool MarkSweepGc::maybe_collect() {
  if (profile_.gc_nursery_bytes <= 0) return false;
  if (static_cast<double>(heap_.allocated_since_gc()) <
      profile_.gc_nursery_bytes)
    return false;
  collect();
  return true;
}

void MarkSweepGc::collect() {
  ++collections_;
  obs::SpanScope gc(obs::Category::kGc, "rt.gc");
  auto& ctx = heap_.ctx();
  ctx.counters().gc_cycles += 1;

  const std::uint64_t live = heap_.live_bytes();
  const std::uint64_t window = heap_.allocated_since_gc();
  const std::uint64_t traversed = live + window;
  if (traversed == 0) return;

  // Mark: pointer-chase across the heap — 128-byte effective stride defeats
  // adjacent-line prefetch, maximising DRAM fills per byte.
  ctx.mem_read(heap_.segment_base(), traversed, 128);
  // Mark bookkeeping: ~2 ops per visited word.
  ctx.compute(static_cast<double>(traversed) / 8.0 * 2.0,
              static_cast<double>(traversed) / 64.0);

  // Sweep/copy survivors.
  const auto survivors = static_cast<std::uint64_t>(
      static_cast<double>(window) * profile_.gc_survivor_fraction);
  if (survivors > 0) {
    const std::uint64_t dst = ctx.alloc_region(survivors, 4096);
    ctx.mem_copy(dst, heap_.segment_base(), survivors);
  }
  // live_bytes() includes the allocation window; only survivors of the
  // window remain live after the sweep.
  const std::uint64_t old_live = live - std::min(live, window);
  heap_.reclaim_garbage(old_live + survivors);
}

}  // namespace confbench::rt

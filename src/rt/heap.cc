#include "rt/heap.h"

#include <algorithm>

namespace confbench::rt {

SimHeap::SimHeap(vm::ExecutionContext& ctx, std::uint64_t segment_bytes)
    : ctx_(ctx), segment_bytes_(segment_bytes) {
  new_segment();
}

void SimHeap::new_segment() {
  seg_base_ = ctx_.alloc_region(segment_bytes_, 4096);
  seg_used_ = 0;
  // Heap segments are overwhelmingly pre-faulted by the runtime bootstrap;
  // only allocator metadata pages fault here.
  ctx_.page_fault(static_cast<double>(segment_bytes_) / 4096.0 * 0.002);
}

std::uint64_t SimHeap::allocate(std::uint64_t bytes) {
  const std::uint64_t need = std::max<std::uint64_t>(bytes, 16);
  if (seg_used_ + need > segment_bytes_) new_segment();
  const std::uint64_t addr = seg_base_ + seg_used_;
  seg_used_ += need;
  live_ += need;
  since_gc_ += need;
  ctx_.counters().alloc_bytes += static_cast<double>(need);
  // Object header + zero-init of the first cache lines.
  ctx_.mem_write(addr, std::min<std::uint64_t>(need, 256), 64);
  return addr;
}

void SimHeap::release(std::uint64_t bytes) {
  live_ -= std::min(live_, bytes);
}

void SimHeap::reclaim_garbage(std::uint64_t live_after) {
  live_ = live_after;
  since_gc_ = 0;
  // Fresh allocations restart from a compacted segment.
  seg_used_ = std::min(seg_used_, live_after % segment_bytes_);
}

}  // namespace confbench::rt
